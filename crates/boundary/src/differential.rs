//! Differential boundary validation: the empirical ground truth.
//!
//! The theory (§5.2) gives conditions under which a static boundary is
//! safe. This module *measures* safety: run the same operator change
//! against (a) a full emulation of the production network and (b) the
//! boundary emulation with static speakers, then compare the must-have
//! devices' forwarding tables with the ECMP-aware comparator (§9). A safe
//! boundary produces identical FIBs; Figure 7a's unsafe boundary visibly
//! diverges.

use crate::classify::Classification;
use crate::speakers::synthesize_speakers;
use crystalnet_dataplane::{compare_fibs, CompareOptions, FibDifference};
use crystalnet_net::{DeviceId, Topology};
use crystalnet_routing::harness::{build_bgp_sim, build_full_bgp_sim};
use crystalnet_routing::{ControlPlaneSim, UniformWorkModel, VendorProfile};
use crystalnet_sim::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// The outcome of a differential validation.
#[derive(Debug)]
pub struct DifferentialReport {
    /// Devices whose forwarding state was compared.
    pub must_have: Vec<DeviceId>,
    /// Per-device FIB differences (empty vector = consistent device).
    pub diffs: Vec<(DeviceId, Vec<FibDifference>)>,
}

impl DifferentialReport {
    /// Whether every must-have device's FIB matched.
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.diffs.iter().all(|(_, d)| d.is_empty())
    }

    /// Total differences across devices.
    #[must_use]
    pub fn difference_count(&self) -> usize {
        self.diffs.iter().map(|(_, d)| d.len()).sum()
    }
}

fn quick_work() -> Box<UniformWorkModel> {
    Box::new(UniformWorkModel {
        boot: SimDuration::from_secs(1),
        ..UniformWorkModel::default()
    })
}

fn converge(sim: &mut ControlPlaneSim, from: SimTime) -> SimTime {
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        from + SimDuration::from_mins(240),
    )
    .expect("emulation must converge")
}

/// Runs `change` against both the full network and the boundary
/// emulation, then compares the must-have FIBs.
///
/// `change` receives the simulation and the instant at which to apply the
/// operation (already past convergence); it must behave identically for
/// both runs — exactly like an operator replaying a change plan.
pub fn differential_validate(
    topo: &Topology,
    emulated: &BTreeSet<DeviceId>,
    must_have: &[DeviceId],
    opts: &CompareOptions,
    change: &dyn Fn(&mut ControlPlaneSim, SimTime),
) -> DifferentialReport {
    let class = Classification::new(topo, emulated);

    // (a) Full production emulation.
    let mut full = build_full_bgp_sim(topo, quick_work());
    full.boot_all(SimTime::ZERO);
    let t_full = converge(&mut full, SimTime::ZERO);

    // (b) Boundary emulation: emulated devices real, speakers static.
    // Speaker scripts come from the pre-change production snapshot.
    let plan = synthesize_speakers(topo, &class, &full);
    let mut partial = build_bgp_sim(topo, quick_work(), |id, dev| {
        emulated
            .contains(&id)
            .then(|| VendorProfile::for_vendor(dev.vendor))
    });
    for speaker in class.speakers() {
        if let Some(os) = plan.build_os(topo, speaker) {
            partial.add_os(speaker, Box::new(os));
        }
    }
    partial.boot_all(SimTime::ZERO);
    let t_partial = converge(&mut partial, SimTime::ZERO);

    // Apply the identical change to both, then re-converge.
    change(&mut full, t_full + SimDuration::from_secs(10));
    converge(&mut full, t_full);
    change(&mut partial, t_partial + SimDuration::from_secs(10));
    converge(&mut partial, t_partial);

    // Compare the must-have devices' forwarding state.
    let diffs = must_have
        .iter()
        .map(|&d| {
            let f = full.fib(d).expect("must-have exists in full run");
            let p = partial.fib(d).expect("must-have exists in boundary run");
            (d, compare_fibs(f, p, opts))
        })
        .collect();
    DifferentialReport {
        must_have: must_have.to_vec(),
        diffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::emulated_set;
    use crystalnet_net::fixtures::fig7;
    use crystalnet_net::Ipv4Prefix;
    use crystalnet_routing::MgmtCommand;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    /// The §5.1 running example: T4 gets a new IP prefix 10.1.0.0/16.
    fn add_prefix_on_t4(
        f: &crystalnet_net::fixtures::Fig7,
    ) -> impl Fn(&mut ControlPlaneSim, SimTime) {
        let t4 = f.tors[3];
        move |sim: &mut ControlPlaneSim, at: SimTime| {
            sim.mgmt(t4, MgmtCommand::AddNetwork(p("10.1.0.0/16")), at);
        }
    }

    #[test]
    fn fig7a_unsafe_boundary_diverges() {
        let f = fig7();
        // Emulate T1-4, L1-4; speakers S1,S2. Must-haves: the left pod,
        // which in production learns T4's new prefix *through the
        // spines*.
        let emulated = emulated_set(
            &f.leaves[..4]
                .iter()
                .chain(&f.tors[..4])
                .copied()
                .collect::<Vec<_>>(),
        );
        let report = differential_validate(
            &f.topo,
            &emulated,
            &[f.leaves[0], f.leaves[1], f.tors[0]],
            &CompareOptions::strict(),
            &add_prefix_on_t4(&f),
        );
        assert!(!report.consistent(), "Figure 7a's boundary must diverge");
        // The divergence is exactly the missing new prefix on the far
        // side of the static speakers.
        let (_, l1_diffs) = &report.diffs[0];
        assert!(l1_diffs
            .iter()
            .any(|d| matches!(d, FibDifference::OnlyLeft(pfx) if *pfx == p("10.1.0.0/16"))));
    }

    #[test]
    fn fig7b_safe_boundary_stays_consistent() {
        let f = fig7();
        // Emulate S1,S2 too: the update reaches L1/T1 inside the
        // emulation; the speakers (L5,L6) would not have reacted in
        // production either.
        let emulated = emulated_set(
            &f.spines
                .iter()
                .chain(&f.leaves[..4])
                .chain(&f.tors[..4])
                .copied()
                .collect::<Vec<_>>(),
        );
        let report = differential_validate(
            &f.topo,
            &emulated,
            &[f.leaves[0], f.leaves[1], f.tors[0], f.tors[3]],
            &CompareOptions::strict(),
            &add_prefix_on_t4(&f),
        );
        assert!(
            report.consistent(),
            "Figure 7b's boundary must stay consistent: {:?}",
            report.diffs
        );
    }

    #[test]
    fn fig7c_safe_for_leaves_under_link_failure() {
        let f = fig7();
        // Emulate S1,S2,L1-4; the §5.2 example change: link S1-L1 fails.
        let emulated = emulated_set(
            &f.spines
                .iter()
                .chain(&f.leaves[..4])
                .copied()
                .collect::<Vec<_>>(),
        );
        let topo = f.topo.clone();
        let s1 = f.spines[0];
        let l1 = f.leaves[0];
        let report = differential_validate(
            &f.topo,
            &emulated,
            &f.leaves[..4],
            &CompareOptions::strict(),
            &move |sim, at| {
                let (lid, _, _) = topo
                    .neighbors(s1)
                    .find(|(_, _, remote)| remote.device == l1)
                    .expect("S1-L1 link exists");
                let ep = ControlPlaneSim::link_endpoints(&topo, lid);
                sim.link_down(ep, at);
            },
        );
        assert!(
            report.consistent(),
            "Figure 7c is safe for L1-4: {:?}",
            report.diffs
        );
    }
}
