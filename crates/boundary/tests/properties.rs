//! Property tests for the boundary theory: on random small networks, the
//! efficient sufficient conditions (Propositions 5.2/5.3) never accept a
//! boundary the exact Lemma 5.1 oracle rejects.

use crystalnet_boundary::{
    check_lemma_5_1, check_prop_5_2, check_prop_5_3, find_safe_dc_boundary, Classification,
};
use crystalnet_net::{Asn, Device, DeviceId, Ipv4Addr, P2pAllocator, Role, Topology, Vendor};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Builds a random connected topology with ≤ 9 devices and ≤ 6 ASes.
fn random_topology(n: usize, as_of: &[u8], extra_edges: &[(u8, u8)]) -> Topology {
    let mut topo = Topology::new();
    let mut p2p = P2pAllocator::new("100.110.0.0/16".parse().unwrap());
    for i in 0..n {
        topo.add_device(Device {
            name: format!("d{i}"),
            role: Role::Leaf,
            vendor: Vendor::CtnrA,
            asn: Asn(1000 + u32::from(as_of[i % as_of.len()])),
            loopback: Ipv4Addr::new(172, 40, 0, i as u8 + 1),
            mgmt_addr: Ipv4Addr::new(192, 168, 40, i as u8 + 1),
            originated: vec![],
            ifaces: vec![],
            pod: None,
        })
        .unwrap();
    }
    // Spanning chain for connectivity.
    for i in 1..n {
        topo.connect_p2p(DeviceId(i as u32 - 1), DeviceId(i as u32), &mut p2p)
            .unwrap();
    }
    for &(a, b) in extra_edges {
        let (a, b) = (a as usize % n, b as usize % n);
        if a != b {
            topo.connect_p2p(DeviceId(a as u32), DeviceId(b as u32), &mut p2p)
                .unwrap();
        }
    }
    topo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Prop 5.2 acceptance implies Lemma 5.1 safety (soundness of the
    /// sufficient condition).
    #[test]
    fn prop_5_2_is_sound(
        n in 3usize..9,
        as_of in prop::collection::vec(0u8..6, 3..9),
        extra in prop::collection::vec((any::<u8>(), any::<u8>()), 0..6),
        mask in any::<u16>(),
    ) {
        let topo = random_topology(n, &as_of, &extra);
        let emulated: BTreeSet<DeviceId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| DeviceId(i as u32))
            .collect();
        prop_assume!(!emulated.is_empty());
        let class = Classification::new(&topo, &emulated);
        if check_prop_5_2(&topo, &class).is_ok() {
            prop_assert!(
                check_lemma_5_1(&topo, &emulated).is_ok(),
                "Prop 5.2 accepted an unsafe boundary"
            );
        }
    }

    /// Prop 5.3 acceptance implies Lemma 5.1 safety.
    #[test]
    fn prop_5_3_is_sound(
        n in 3usize..9,
        as_of in prop::collection::vec(0u8..6, 3..9),
        extra in prop::collection::vec((any::<u8>(), any::<u8>()), 0..6),
        mask in any::<u16>(),
    ) {
        let topo = random_topology(n, &as_of, &extra);
        let emulated: BTreeSet<DeviceId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| DeviceId(i as u32))
            .collect();
        prop_assume!(!emulated.is_empty());
        let class = Classification::new(&topo, &emulated);
        if check_prop_5_3(&topo, &class).is_ok() {
            prop_assert!(
                check_lemma_5_1(&topo, &emulated).is_ok(),
                "Prop 5.3 accepted an unsafe boundary"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1 outputs are safe per the exact oracle on small random
    /// Clos fabrics.
    #[test]
    fn algorithm_1_is_safe_on_random_small_clos(
        borders in 1u32..3,
        groups in 1u32..3,
        pods in 1u32..4,
        pick in any::<u32>(),
    ) {
        let params = crystalnet_net::ClosParams {
            name: "pt".into(),
            borders,
            spine_groups: groups,
            spines_per_group: 1,
            pods,
            leaves_per_pod: 2,
            tors_per_pod: 1,
            groups_per_pod: groups,
            ext_peers_per_border: 1,
            ext_prefixes_per_peer: 1,
        };
        let dc = params.build();
        let pod = &dc.pods[(pick as usize) % dc.pods.len()];
        let out = find_safe_dc_boundary(&dc.topo, &[pod.tors[0]]);
        prop_assert!(
            check_lemma_5_1(&dc.topo, &out).is_ok(),
            "Algorithm 1 produced an unsafe boundary"
        );
    }
}
