//! Incremental re-convergence tests: the differential guarantee that a
//! warm-start session apply (fork, rehearse, commit) is bit-identical
//! to a full re-settle from the same seed, for every change kind and
//! across worker counts; plus dirty-set semantics (no-op diffs touch
//! nothing, speakers bound the ripple) and the interaction with fault
//! quarantine. Exactly one test still calls the deprecated in-place
//! `apply_change` wrapper, pinning it to the session path until it is
//! removed.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_config::{
    Acl, AclEntry, PrefixList, PrefixListEntry, RouteMap, RouteMapEntry, RouteMatch,
};
use crystalnet_dataplane::Fib;
use crystalnet_net::fixtures::fig7;
use crystalnet_net::{ClosParams, DeviceId as Dev};
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::{PathAttrs, SpeakerScript, UniformWorkModel};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Whole-network fig. 7 mockup (no speakers).
fn fig7_emu(seed: u64, workers: usize) -> Emulation {
    let f = fig7();
    let prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    mockup(
        Arc::new(prep),
        MockupOptions::builder().seed(seed).workers(workers).build(),
    )
}

/// Figure 7b boundary prepare: emulate S1-2, L1-4, T1-4; L5/L6 become
/// static speakers replaying a converged production snapshot.
fn fig7b_prep() -> PrepareOutput {
    let f = fig7();
    let mut prod = build_full_bgp_sim(
        &f.topo,
        Box::new(UniformWorkModel {
            boot: SimDuration::from_secs(1),
            ..UniformWorkModel::default()
        }),
    );
    prod.boot_all(SimTime::ZERO);
    prod.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::ZERO + SimDuration::from_mins(60),
    )
    .unwrap();
    let emulated: BTreeSet<Dev> = f
        .spines
        .iter()
        .chain(&f.leaves[..4])
        .chain(&f.tors[..4])
        .copied()
        .collect();
    prepare(
        &f.topo,
        &[],
        BoundaryMode::Explicit(emulated),
        SpeakerSource::Snapshot(&prod),
        &PlanOptions::default(),
    )
}

/// Applies `set` through the supported session path — fork, rehearse
/// on the child, commit the child back into `emu`.
fn apply_session(emu: &mut Emulation, set: &ChangeSet) -> Result<ConvergenceDelta, EmulationError> {
    let mut fork = emu.fork();
    let delta = fork.apply(set)?;
    fork.commit(emu);
    Ok(delta)
}

/// Every emulated device's full FIB, keyed by id.
fn fib_map(emu: &Emulation) -> BTreeMap<Dev, Fib> {
    let mut out = BTreeMap::new();
    let mut devs: Vec<Dev> = emu.sandboxes.keys().copied().collect();
    devs.sort_unstable_by_key(|d| d.0);
    for dev in devs {
        if let Some(os) = emu.sim.os(dev) {
            out.insert(dev, os.fib().clone());
        }
    }
    out
}

/// The prepared config of one device, cloned for editing.
fn prepared_config(emu: &Emulation, dev: Dev) -> crystalnet_config::DeviceConfig {
    emu.prep
        .configs
        .iter()
        .find(|(d, _)| *d == dev)
        .map(|(_, c)| c.clone())
        .expect("device has a prepared config")
}

/// A config that denies `deny` on import from every neighbor, via a
/// route-map over a prefix list.
fn deny_on_import(
    base: &crystalnet_config::DeviceConfig,
    deny: crystalnet_net::Ipv4Prefix,
) -> crystalnet_config::DeviceConfig {
    let mut cfg = base.clone();
    cfg.prefix_lists.insert(
        "PL-DENY".into(),
        PrefixList {
            entries: vec![PrefixListEntry {
                seq: 10,
                action: crystalnet_config::Action::Permit,
                prefix: deny,
                ge: None,
                le: None,
            }],
        },
    );
    cfg.route_maps.insert(
        "RM-IN".into(),
        RouteMap {
            entries: vec![
                RouteMapEntry {
                    seq: 10,
                    action: crystalnet_config::Action::Deny,
                    matches: vec![RouteMatch::PrefixList("PL-DENY".into())],
                    sets: vec![],
                },
                RouteMapEntry {
                    seq: 20,
                    action: crystalnet_config::Action::Permit,
                    matches: vec![],
                    sets: vec![],
                },
            ],
        },
    );
    for n in &mut cfg.bgp.as_mut().unwrap().neighbors {
        n.route_map_in = Some("RM-IN".into());
    }
    cfg
}

#[test]
fn noop_and_empty_changesets_touch_nothing() {
    let mut emu = fig7_emu(1, 1);
    let before = fib_map(&emu);
    let at = emu.now();

    let delta = apply_session(&mut emu, &ChangeSet::new()).expect("empty set ok");
    assert!(delta.is_noop());
    assert!(delta.dirty.is_empty() && delta.fib_changes.is_empty());
    assert_eq!(delta.settled_at, at);
    assert_eq!(delta.events_executed, 0);

    // A byte-identical config re-apply classifies as a no-op: nothing is
    // injected, no session resets, no FIB churn.
    let f = fig7();
    let same = prepared_config(&emu, f.spines[0]);
    let delta = apply_session(&mut emu, &ChangeSet::new().config_update(f.spines[0], same))
        .expect("no-op config ok");
    assert_eq!(delta.applied.len(), 1);
    assert_eq!(delta.applied[0].impact, Some(ChangeImpact::NoOp));
    assert!(delta.is_noop());
    assert_eq!(fib_map(&emu), before, "no-op must not perturb any FIB");
}

#[test]
fn policy_edit_matches_cold_boot_across_workers() {
    let f = fig7();
    let spine = f.spines[0];
    let mut per_worker: Vec<BTreeMap<Dev, Fib>> = Vec::new();

    for workers in [1usize, 4] {
        let mut emu = fig7_emu(7, workers);
        let base = prepared_config(&emu, spine);
        let t1_net = prepared_config(&emu, f.tors[0])
            .bgp
            .as_ref()
            .unwrap()
            .networks[0];
        let t2_net = prepared_config(&emu, f.tors[1])
            .bgp
            .as_ref()
            .unwrap()
            .networks[0];

        // Step 1: attach the deny policy — touching `neighbors` is a
        // session reset (who the device talks to changed shape).
        let deny_t1 = deny_on_import(&base, t1_net);
        let d1 = apply_session(
            &mut emu,
            &ChangeSet::new().config_update(spine, deny_t1.clone()),
        )
        .expect("session-reset change applies");
        assert_eq!(d1.applied[0].impact, Some(ChangeImpact::SessionReset));
        assert!(!d1.dirty.is_empty());
        assert!(
            emu.sim.os(spine).unwrap().fib().get(t1_net).is_none(),
            "spine must have filtered t1's prefix"
        );

        // Step 2: re-point the prefix list at t2 — a pure policy edit,
        // soft-refreshed over the live sessions (no reset): t1's prefix
        // must come back via route-refresh replay, t2's must go.
        let deny_t2 = deny_on_import(&deny_t1, t2_net);
        let d2 = apply_session(
            &mut emu,
            &ChangeSet::new().config_update(spine, deny_t2.clone()),
        )
        .expect("soft-refresh change applies");
        assert_eq!(d2.applied[0].impact, Some(ChangeImpact::SoftRefresh));
        let spine_changes = d2.fib_changes.get(&spine).expect("spine FIB changed");
        assert!(spine_changes
            .iter()
            .any(|c| c.prefix == t1_net && c.kind == crystalnet::FibChangeKind::Added));
        assert!(spine_changes
            .iter()
            .any(|c| c.prefix == t2_net && c.kind == crystalnet::FibChangeKind::Removed));

        // Differential: a cold mockup whose prepared config is already
        // the final one must land on byte-identical FIBs everywhere.
        let mut prep = {
            let f = fig7();
            prepare(
                &f.topo,
                &[],
                BoundaryMode::WholeNetwork,
                SpeakerSource::OriginatedOnly,
                &PlanOptions::default(),
            )
        };
        for (d, c) in &mut prep.configs {
            if *d == spine {
                *c = deny_t2.clone();
            }
        }
        let cold = mockup(
            Arc::new(prep),
            MockupOptions::builder().seed(7).workers(workers).build(),
        );
        assert_eq!(
            fib_map(&emu),
            fib_map(&cold),
            "warm incremental result diverged from cold full settle (workers={workers})"
        );
        assert_eq!(
            emu.pull_config(spine).unwrap(),
            cold.pull_config(spine).unwrap()
        );
        per_worker.push(fib_map(&emu));
    }
    assert_eq!(per_worker[0], per_worker[1], "workers must not change FIBs");
}

#[test]
fn link_down_matches_full_resettle_across_workers() {
    let f = fig7();
    // The S1-L1 link.
    let lid = f
        .topo
        .links()
        .find(|(_, l)| {
            let pair = [l.a.device, l.b.device];
            pair.contains(&f.spines[0]) && pair.contains(&f.leaves[0])
        })
        .map(|(lid, _)| lid)
        .expect("fig7 has an s1-l1 link");

    let mut per_worker: Vec<BTreeMap<Dev, Fib>> = Vec::new();
    for workers in [1usize, 4] {
        let mut emu = fig7_emu(11, workers);
        let delta =
            apply_session(&mut emu, &ChangeSet::new().link_down(lid)).expect("link-down applies");
        assert!(delta.dirty.contains(&f.spines[0]) && delta.dirty.contains(&f.leaves[0]));
        assert!(
            delta.total_fib_changes() > 0,
            "losing a spine link must churn FIBs"
        );

        // Reference: the pre-existing full path — fresh mockup, Table 2
        // Disconnect, full settle.
        let mut cold = fig7_emu(11, workers);
        cold.disconnect(lid);
        cold.settle().expect("cold path converges");
        assert_eq!(
            fib_map(&emu),
            fib_map(&cold),
            "incremental link-down diverged from full settle (workers={workers})"
        );
        per_worker.push(fib_map(&emu));
    }
    assert_eq!(per_worker[0], per_worker[1]);
}

#[test]
fn speaker_route_swap_matches_cold_boot_across_workers() {
    let f = fig7();
    let speaker = f.leaves[4]; // l5
    let swapped: crystalnet_net::Ipv4Prefix = "10.99.0.0/24".parse().unwrap();
    let as_path = vec![f.topo.device(speaker).asn];

    let mut per_worker: Vec<BTreeMap<Dev, Fib>> = Vec::new();
    for workers in [1usize, 4] {
        let mut emu = mockup(
            Arc::new(fig7b_prep()),
            MockupOptions::builder().seed(3).workers(workers).build(),
        );
        assert!(
            emu.sandboxes.contains_key(&speaker),
            "l5 is a speaker sandbox in the 7b boundary"
        );

        let delta = apply_session(
            &mut emu,
            &ChangeSet::new().speaker_route_swap(
                speaker,
                vec![SpeakerRoute {
                    prefix: swapped,
                    as_path: as_path.clone(),
                    med: 0,
                }],
            ),
        )
        .expect("speaker swap applies");
        assert!(delta.dirty.contains(&speaker));
        assert!(
            delta.total_fib_changes() > 0,
            "the swap must retract old routes"
        );
        // Spines now reach the swapped prefix.
        assert!(emu
            .sim
            .os(f.spines[0])
            .unwrap()
            .fib()
            .get(swapped)
            .is_some());

        // Differential: cold boot from a prepare whose speaker plan holds
        // the swapped script from the start.
        let mut prep = fig7b_prep();
        let loopback = f.topo.device(speaker).loopback;
        for (d, per_iface) in &mut prep.speaker_plan.scripts {
            if *d == speaker {
                for (_, script) in per_iface.iter_mut() {
                    *script = SpeakerScript {
                        routes: vec![(
                            swapped,
                            PathAttrs {
                                as_path: as_path.clone(),
                                med: 0,
                                ..PathAttrs::originated(loopback)
                            }
                            .intern(),
                        )],
                    };
                }
            }
        }
        let cold = mockup(
            Arc::new(prep),
            MockupOptions::builder().seed(3).workers(workers).build(),
        );
        assert_eq!(
            fib_map(&emu),
            fib_map(&cold),
            "warm speaker swap diverged from cold boot (workers={workers})"
        );
        per_worker.push(fib_map(&emu));
    }
    assert_eq!(per_worker[0], per_worker[1]);
}

#[test]
fn dirty_set_stops_at_speaker_barriers() {
    let f = fig7();
    let mut emu = mockup(
        Arc::new(fig7b_prep()),
        MockupOptions::builder().seed(5).build(),
    );
    let t1 = f.tors[0];
    let cfg = prepared_config(&emu, t1);
    let mut edited = cfg.clone();
    edited
        .bgp
        .as_mut()
        .unwrap()
        .networks
        .push("10.42.0.0/24".parse().unwrap());

    let delta = apply_session(&mut emu, &ChangeSet::new().config_update(t1, edited))
        .expect("network edit applies");
    // Speakers are *included* when reached (their adjacency matters) but
    // never expanded through: nothing outside the emulated scope appears.
    assert!(delta.dirty.contains(&f.leaves[4]) && delta.dirty.contains(&f.leaves[5]));
    for d in &delta.dirty {
        assert!(
            emu.sandboxes.contains_key(d),
            "dirty set leaked outside the emulation: {d:?}"
        );
    }
    assert!(!delta.dirty.contains(&f.tors[4]) && !delta.dirty.contains(&f.tors[5]));
}

#[test]
fn acl_only_change_dirties_a_sliver_of_clos64() {
    // Regression for the incremental bench reporting `dirty_devices ==
    // devices` on every row: an ACL-only edit cannot change what a
    // device announces or selects, so its predicted dirty set must stay
    // leaf-local (the edited ToR plus its direct neighbors) instead of
    // flooding all of clos-64.
    let topo = ClosParams {
        name: "clos-64".into(),
        borders: 2,
        spine_groups: 1,
        spines_per_group: 2,
        pods: 4,
        leaves_per_pod: 2,
        tors_per_pod: 13,
        groups_per_pod: 1,
        ext_peers_per_border: 1,
        ext_prefixes_per_peer: 8,
    }
    .build();
    let prep = prepare(
        &topo.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    let mut emu = mockup(Arc::new(prep), MockupOptions::builder().seed(21).build());
    let devices = emu.sandboxes.len();
    let before = fib_map(&emu);

    let tor = topo.pods[0].tors[0];
    let mut edited = prepared_config(&emu, tor);
    edited.acls.insert(
        "ACL-MGMT".into(),
        Acl {
            entries: vec![AclEntry {
                seq: 10,
                action: crystalnet_config::Action::Deny,
                src: "10.66.0.0/24".parse().unwrap(),
                dst: "0.0.0.0/0".parse().unwrap(),
            }],
        },
    );
    let delta = apply_session(&mut emu, &ChangeSet::new().config_update(tor, edited))
        .expect("acl edit applies");
    assert_eq!(delta.applied[0].impact, Some(ChangeImpact::SoftRefresh));

    let got: BTreeSet<Dev> = delta.dirty.iter().copied().collect();
    let mut expected: BTreeSet<Dev> = topo.topo.neighbor_devices(tor).collect();
    expected.insert(tor);
    assert_eq!(got, expected, "ACL edit must stay one hop from the ToR");
    assert!(
        delta.dirty.len() < devices,
        "leaf-local change dirtied the whole fabric: {} of {devices}",
        delta.dirty.len()
    );

    // The full-scope FIB diff audits the prediction: packet filtering is
    // dataplane-only, so no FIB anywhere may move.
    assert!(delta.fib_changes.is_empty(), "ACL edit must not churn FIBs");
    assert_eq!(fib_map(&emu), before);
}

#[test]
fn device_removal_works_while_a_quarantine_is_active() {
    // Exhaust VM 0's reboot retries so its sandboxes are quarantined to a
    // spare, then decommission one of the displaced devices.
    let f = fig7();
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(5),
        FaultKind::VmSlowRestart {
            vm: 0,
            failed_attempts: 4,
        },
    );
    let prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions {
            target_vms: Some(4),
            ..PlanOptions::default()
        },
    );
    let victim = prep.vm_plan.vms[0].devices[0];
    let mut emu = mockup(
        Arc::new(prep),
        MockupOptions::builder().seed(9).fault_plan(plan).build(),
    );
    emu.settle().expect("post-quarantine convergence");
    assert_ne!(emu.sandboxes[&victim].vm, 0, "victim must be on the spare");

    let delta = apply_session(&mut emu, &ChangeSet::new().device_remove(victim))
        .expect("removal applies on a quarantined placement");
    assert!(delta.dirty.contains(&victim));
    assert!(!emu.sandboxes.contains_key(&victim));
    assert!(matches!(
        emu.pull_states(victim),
        Err(EmulationError::UnknownDevice(_))
    ));
    // The removed device's FIB reads as fully retracted in the delta.
    assert!(delta.fib_changes.get(&victim).is_some_and(|ch| ch
        .iter()
        .all(|c| c.kind == crystalnet::FibChangeKind::Removed)));

    // Differential: a fault-free run that removes the same device lands
    // on the same FIBs for every surviving device.
    let prep2 = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions {
            target_vms: Some(4),
            ..PlanOptions::default()
        },
    );
    let mut cold = mockup(Arc::new(prep2), MockupOptions::builder().seed(9).build());
    apply_session(&mut cold, &ChangeSet::new().device_remove(victim))
        .expect("fault-free removal applies");
    assert_eq!(
        fib_map(&emu),
        fib_map(&cold),
        "quarantine history must not change the post-removal fixed point"
    );
}

/// The deprecated in-place `apply_change` wrapper must keep delegating
/// to the session path bit-for-bit until it is removed. This is the
/// one test still allowed to call it — every other caller has moved to
/// fork/apply/commit.
#[test]
#[allow(deprecated)]
fn deprecated_apply_change_wrapper_matches_session_path() {
    let f = fig7();
    let lid = f
        .topo
        .links()
        .find(|(_, l)| {
            let pair = [l.a.device, l.b.device];
            pair.contains(&f.spines[0]) && pair.contains(&f.leaves[0])
        })
        .map(|(lid, _)| lid)
        .expect("fig7 has an s1-l1 link");

    let mut legacy = fig7_emu(17, 1);
    let mut session = fig7_emu(17, 1);
    let d_legacy = legacy
        .apply_change(&ChangeSet::new().link_down(lid))
        .expect("wrapper applies");
    let d_session =
        apply_session(&mut session, &ChangeSet::new().link_down(lid)).expect("session applies");

    assert_eq!(d_legacy.dirty, d_session.dirty);
    assert_eq!(d_legacy.fib_changes, d_session.fib_changes);
    assert_eq!(d_legacy.settled_at, d_session.settled_at);
    assert_eq!(d_legacy.events_executed, d_session.events_executed);
    assert_eq!(
        fib_map(&legacy),
        fib_map(&session),
        "wrapper and session path must land on identical FIBs"
    );
}

#[test]
fn rehearse_runs_multi_step_plans_and_round_trips() {
    let f = fig7();
    let lid = f
        .topo
        .links()
        .find(|(_, l)| {
            let pair = [l.a.device, l.b.device];
            pair.contains(&f.spines[0]) && pair.contains(&f.leaves[0])
        })
        .map(|(lid, _)| lid)
        .unwrap();

    let mut emu = fig7_emu(13, 1);
    let baseline = fib_map(&emu);
    let report = emu
        .rehearse(&[
            RehearsalStep::new("drain s1-l1", ChangeSet::new().link_down(lid)),
            RehearsalStep::new("restore s1-l1", ChangeSet::new().link_up(lid)),
        ])
        .expect("plan runs");
    assert_eq!(report.steps.len(), 2);
    assert!(report.total_fib_changes() > 0);
    assert!(report.summary().contains("drain s1-l1"));
    // Down-then-up is a rehearsal no-op: the fabric returns to its
    // baseline forwarding state.
    assert_eq!(fib_map(&emu), baseline, "drain+restore must round-trip");

    // A failing step surfaces its typed error and stops the plan.
    let err = emu
        .rehearse(&[RehearsalStep::new(
            "remove ghost",
            ChangeSet::new().device_remove(Dev(9999)),
        )])
        .unwrap_err();
    assert!(matches!(err, EmulationError::UnknownDevice(_)));
}
