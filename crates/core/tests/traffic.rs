//! Traffic-plane tests: seeded flow load produces byte-identical
//! gauges and congestion incidents across worker counts and under
//! profiling, a saturated link yields an over-subscription witness
//! correlated to the injected fault, the plane is fully passive when
//! disabled (runs reproduce the health-only engine bit for bit),
//! builder knobs fail eagerly, and a fork's rehearsed change reports
//! its own traffic impact without touching the parent.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_net::fixtures::fig7;

/// A flow load dense and fast enough that fig7 sees traffic on every
/// spine within a few virtual seconds. Capacity is sized so ordinary
/// load stays under the over-subscription threshold.
fn traffic_cfg() -> TrafficConfig {
    TrafficConfig {
        period: SimDuration::from_millis(500),
        flows_per_round: 8,
        request_bytes: 2_000,
        response_bytes: 20_000,
        server_share_pct: 25,
        link_capacity_bps: 10_000_000,
        oversub_pct: 80,
        polarisation_pct: 90,
        polarisation_min_bytes: 64_000,
        slo_window: 6,
        slo_loss_pct: 25,
        ttl: 16,
        seed: 0,
    }
}

/// The health-plane config the PR 9 suite runs with — traffic tests
/// keep the probe mesh on so the two planes interleave.
fn probe_cfg() -> ProbeConfig {
    ProbeConfig {
        period: SimDuration::from_millis(500),
        pairs_per_round: 16,
        slo_window: 6,
        slo_loss_pct: 25,
        ttl: 16,
        churn_threshold: 10_000,
        seed: 0,
    }
}

fn fig7_emu(
    seed: u64,
    workers: usize,
    traffic: Option<TrafficConfig>,
    plan: FaultPlan,
) -> Emulation {
    let f = fig7();
    let prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    let mut b = MockupOptions::builder()
        .seed(seed)
        .workers(workers)
        .fault_plan(plan)
        .health_config(probe_cfg());
    if let Some(cfg) = traffic {
        b = b.traffic_config(cfg);
    }
    mockup(Arc::new(prep), b.build())
}

fn assert_fibs_equal(a: &Emulation, b: &Emulation, what: &str) {
    for (id, d) in a.topo.devices() {
        match (a.sim.fib(id), b.sim.fib(id)) {
            (None, None) => {}
            (Some(fa), Some(fb)) => assert_eq!(fa, fb, "{what}: FIB diverged on {}", d.name),
            _ => panic!("{what}: OS presence differs on {}", d.name),
        }
    }
}

#[test]
fn traffic_exports_are_byte_identical_across_workers_and_profiling() {
    let f = fig7();
    let mk_plan = || {
        FaultPlan::default().then(
            SimDuration::from_secs(3),
            FaultKind::SilentBlackhole {
                device: f.spines[0],
            },
        )
    };
    let pull = |emu: &Emulation| {
        (
            emu.pull_traffic().to_json(),
            emu.pull_health().to_json(),
            emu.incidents_jsonl(),
        )
    };
    let mut serial = fig7_emu(121, 1, Some(traffic_cfg()), mk_plan());
    let mut sharded = fig7_emu(121, 4, Some(traffic_cfg()), mk_plan());
    for emu in [&mut serial, &mut sharded] {
        emu.advance(SimDuration::from_secs(15));
    }
    let a = pull(&serial);
    assert!(!a.2.is_empty(), "the scenario must produce incidents");
    let t = serial.pull_traffic();
    assert!(t.enabled);
    assert!(t.flows_sent > 0, "flows must launch");
    assert!(t.flows_delivered > 0, "some flows must arrive");
    assert!(
        !t.links.is_empty(),
        "delivered flows must charge link gauges"
    );
    assert_eq!(
        a,
        pull(&sharded),
        "traffic exports must not depend on the worker count"
    );

    // `profiling(true)` observes; it must not perturb the traffic plane.
    let fx = fig7();
    let prep = prepare(
        &fx.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    let mut profiled = mockup(
        Arc::new(prep),
        MockupOptions::builder()
            .seed(121)
            .workers(1)
            .fault_plan(mk_plan())
            .health_config(probe_cfg())
            .traffic_config(traffic_cfg())
            .profiling(true)
            .build(),
    );
    profiled.advance(SimDuration::from_secs(15));
    assert_eq!(
        a,
        pull(&profiled),
        "profiling must not perturb traffic bytes"
    );
}

/// Starving a link of capacity makes the over-subscription watchdog
/// fire, and the congestion incident correlates to the injected fault
/// that concentrated the load — the acceptance scenario.
#[test]
fn saturated_link_yields_a_congestion_witness_correlated_to_the_fault() {
    let f = fig7();
    // 64 kbit/s → 4000 bytes per 500ms period: any response flow
    // (20 kB) over-subscribes whatever link carries it.
    let mut cfg = traffic_cfg();
    cfg.link_capacity_bps = 64_000;
    let (lid, _, _) = f.topo.neighbors(f.tors[0]).next().unwrap();
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(3),
        FaultKind::LinkFlapBurst {
            link: lid,
            flaps: 1,
            period: SimDuration::from_secs(30),
        },
    );
    let mut emu = fig7_emu(131, 2, Some(cfg), plan);
    emu.advance(SimDuration::from_secs(20));

    let incidents = emu.incidents();
    let oversub: Vec<_> = incidents
        .iter()
        .filter(|ci| matches!(ci.incident.kind, IncidentKind::LinkOversubscribed { .. }))
        .collect();
    assert!(
        !oversub.is_empty(),
        "a starved link must fire the over-subscription watchdog"
    );
    for ci in &oversub {
        let IncidentKind::LinkOversubscribed {
            bytes,
            capacity_bytes,
            ..
        } = ci.incident.kind
        else {
            unreachable!()
        };
        assert!(
            bytes * 100 > 80 * capacity_bytes,
            "witness carries the offending byte count"
        );
    }
    assert!(
        oversub
            .iter()
            .any(|ci| matches!(&ci.cause, Some(IncidentCause::Fault { .. }))),
        "at least one congestion incident correlates to the injected fault"
    );
    // The peak gauge remembers how hot the link ran.
    let t = emu.pull_traffic();
    assert!(
        t.links.iter().any(|l| l.peak_util_pct > 80),
        "utilisation gauges must show the saturation"
    );

    // Drop the artifact where the CI traffic-smoke job picks it up.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(
        format!("{dir}/traffic_incidents.jsonl"),
        emu.incidents_jsonl(),
    )
    .unwrap();
}

/// With the traffic plane off, runs are byte-identical to the PR 9
/// health-only engine: same FIBs, no `traffic.*` counters, no flow
/// events in the trace, and the off-run reproduces bit for bit.
#[test]
fn disabled_traffic_plane_is_fully_passive() {
    let mut on = fig7_emu(141, 1, Some(traffic_cfg()), FaultPlan::default());
    let mut off = fig7_emu(141, 1, None, FaultPlan::default());
    on.advance(SimDuration::from_secs(10));
    off.advance(SimDuration::from_secs(10));

    // Flows never touch the control plane: FIBs identical on vs off.
    assert_fibs_equal(&on, &off, "flows must not perturb the FIBs");

    let report = off.pull_traffic();
    assert!(!report.enabled);
    assert_eq!(report.flows_sent, 0);
    assert!(report.links.is_empty());

    // No traffic counters and no flow trace records: the run report and
    // trace are exactly the health-only engine's bytes.
    let run = off.pull_report();
    assert!(!run.counters.keys().any(|k| k.starts_with("traffic.")));
    let on_run = on.pull_report();
    assert!(
        on_run.counters.keys().any(|k| k.starts_with("traffic.")),
        "the on-run proves the counters exist to be absent"
    );

    // And the off-run itself reproduces bit for bit.
    let mut off2 = fig7_emu(141, 1, None, FaultPlan::default());
    off2.advance(SimDuration::from_secs(10));
    assert_eq!(off.trace_jsonl(), off2.trace_jsonl());
    assert_eq!(off.pull_report().to_json(), off2.pull_report().to_json());
    assert_eq!(off.incidents_jsonl(), off2.incidents_jsonl());
}

#[test]
fn invalid_traffic_knobs_fail_eagerly() {
    let zero_period = MockupOptions::builder()
        .traffic(SimDuration::ZERO)
        .try_build();
    assert!(matches!(
        zero_period,
        Err(EmulationError::InvalidOption(ref what)) if what.contains("period")
    ));

    let zero_ttl = MockupOptions::builder()
        .traffic_config(TrafficConfig {
            ttl: 0,
            ..traffic_cfg()
        })
        .try_build();
    assert!(matches!(
        zero_ttl,
        Err(EmulationError::InvalidOption(ref what)) if what.contains("ttl")
    ));

    let zero_flows = MockupOptions::builder()
        .traffic_config(TrafficConfig {
            flows_per_round: 0,
            ..traffic_cfg()
        })
        .try_build();
    assert!(matches!(
        zero_flows,
        Err(EmulationError::InvalidOption(ref what)) if what.contains("flows_per_round")
    ));

    let zero_capacity = MockupOptions::builder()
        .traffic_config(TrafficConfig {
            link_capacity_bps: 0,
            ..traffic_cfg()
        })
        .try_build();
    assert!(matches!(
        zero_capacity,
        Err(EmulationError::InvalidOption(ref what)) if what.contains("capacity")
    ));

    // Valid knobs still build.
    assert!(MockupOptions::builder()
        .traffic(SimDuration::from_secs(1))
        .try_build()
        .is_ok());
}

#[test]
fn a_forks_rehearsed_change_reports_its_own_traffic_impact() {
    let f = fig7();
    let mut emu = fig7_emu(151, 1, Some(traffic_cfg()), FaultPlan::default());
    emu.advance(SimDuration::from_secs(5));
    let parent_traffic = emu.pull_traffic().to_json();

    // Rehearse a drain on a fork: take down a ToR uplink.
    let (lid, _, _) = f.topo.neighbors(f.tors[0]).next().unwrap();
    let mut fork = emu.fork();
    let delta = fork
        .apply(&ChangeSet::new().link_down(lid))
        .expect("drain applies on the fork");

    // The delta carries the change's own traffic impact (flows launched
    // while it converged) and renders it in the operator summary.
    assert!(
        delta.flows_sent > 0,
        "flows must run during the transient (delta: {delta:?})"
    );
    assert!(
        delta.summary().contains("traffic impact"),
        "{}",
        delta.summary()
    );

    // COW isolation: the parent's utilisation gauges are untouched.
    assert_eq!(
        emu.pull_traffic().to_json(),
        parent_traffic,
        "a fork's rehearsal must not leak into the parent's traffic plane"
    );
}
