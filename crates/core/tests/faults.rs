//! Fault-injection subsystem tests: typed errors, recovery edge cases,
//! quarantine, and the differential guarantee that recovered FIBs match a
//! fault-free run bit for bit.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_net::ClosTopology;

fn s_dc(seed: u64, plan: FaultPlan) -> (ClosTopology, Emulation) {
    let dc = crystalnet_net::ClosParams::s_dc().build();
    let prep = prepare(
        &dc.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions {
            target_vms: Some(5),
            ..PlanOptions::default()
        },
    );
    let emu = mockup(
        Arc::new(prep),
        MockupOptions::builder().seed(seed).fault_plan(plan).build(),
    );
    (dc, emu)
}

#[test]
fn out_of_range_targets_are_typed_errors() {
    let (dc, mut emu) = s_dc(1, FaultPlan::default());

    assert_eq!(
        emu.fail_and_recover_vm(999),
        Err(EmulationError::UnknownVm(999))
    );

    let bad_vm = FaultPlan::default().then(
        SimDuration::from_secs(1),
        FaultKind::VmCrash { vm: 999 }, //
    );
    assert_eq!(
        emu.run_fault_plan(&bad_vm),
        Err(EmulationError::UnknownVm(999))
    );

    let bad_link = FaultPlan::default().then(
        SimDuration::from_secs(1),
        FaultKind::LinkFlapBurst {
            link: LinkId(9_999_999),
            flaps: 1,
            period: SimDuration::from_secs(1),
        },
    );
    assert_eq!(
        emu.run_fault_plan(&bad_link),
        Err(EmulationError::UnknownLink(9_999_999))
    );

    // A ToR is not a speaker agent: SpeakerCrash must reject it.
    let bad_speaker = FaultPlan::default().then(
        SimDuration::from_secs(1),
        FaultKind::SpeakerCrash {
            device: dc.pods[0].tors[0],
        },
    );
    assert!(matches!(
        emu.run_fault_plan(&bad_speaker),
        Err(EmulationError::UnknownDevice(_))
    ));

    // Validation happens before injection: nothing was journaled.
    assert!(emu.journal.events.is_empty());
}

#[test]
fn devices_report_recovering_until_restored() {
    let (_, mut emu) = s_dc(2, FaultPlan::default());
    let vm_idx = (0..emu.prep.vm_plan.vms.len())
        .max_by_key(|&i| emu.prep.vm_plan.vms[i].devices.len())
        .unwrap();
    let victim = emu.prep.vm_plan.vms[vm_idx].devices[0];

    emu.fail_and_recover_vm(vm_idx).expect("recovery runs");
    // Synchronous injection returns before the boot replays: the device
    // must answer `DeviceRecovering`, not pretend to be healthy.
    assert!(matches!(
        emu.pull_states(victim),
        Err(EmulationError::DeviceRecovering(_))
    ));
    emu.settle().expect("re-converges");
    let st = emu.pull_states(victim).expect("restored");
    assert!(st.up);
    assert!(st.fib_prefixes > 100);
}

#[test]
fn same_vm_can_fail_twice_sequentially() {
    let (_, mut emu) = s_dc(3, FaultPlan::default());
    let vm_idx = (0..emu.prep.vm_plan.vms.len())
        .max_by_key(|&i| emu.prep.vm_plan.vms[i].devices.len())
        .unwrap();

    // Each synchronous injection restores the VM before returning, so a
    // second failure of the same VM is legal and recovers again.
    emu.fail_and_recover_vm(vm_idx).expect("first recovery");
    emu.settle().expect("converges after first");
    emu.fail_and_recover_vm(vm_idx).expect("second recovery");
    emu.settle().expect("converges after second");
    assert_eq!(emu.journal.recoveries().len(), 2);
}

#[test]
fn exhausted_retries_quarantine_to_a_spare_and_the_dead_vm_stays_dead() {
    // All four reboot attempts fail: the health monitor gives up on the
    // VM and re-places its sandboxes on a spare.
    let vm_idx = 0;
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(5),
        FaultKind::VmSlowRestart {
            vm: vm_idx,
            failed_attempts: 4,
        },
    );
    let (_, mut emu) = s_dc(4, plan);

    assert!(emu.journal.declared_dead(vm_idx));
    let quarantined = emu.journal.events.iter().any(
        |e| matches!(e.kind, JournalKind::VmQuarantined { vm, .. } if vm == vm_idx), //
    );
    assert!(quarantined, "retry exhaustion must quarantine");
    assert!(!emu.journal.recoveries().is_empty());

    // The displaced devices live on their spare and answer the APIs.
    let victims = emu.prep.vm_plan.vms[vm_idx].devices.clone();
    for d in &victims {
        let sb = emu.sandboxes[d];
        assert_ne!(sb.vm, vm_idx, "sandbox must have moved off the dead VM");
        let st = emu.pull_states(*d).expect("displaced device reachable");
        assert!(st.up);
        assert!(st.fib_prefixes > 100);
    }

    // A quarantined VM cannot fail again: it is already dead.
    assert_eq!(
        emu.fail_and_recover_vm(vm_idx),
        Err(EmulationError::VmDown(vm_idx))
    );
}

#[test]
fn vm_failure_during_inflight_reload_converges() {
    let (_, mut emu) = s_dc(5, FaultPlan::default());
    let vm_idx = (0..emu.prep.vm_plan.vms.len())
        .max_by_key(|&i| emu.prep.vm_plan.vms[i].devices.len())
        .unwrap();
    let dev = emu.prep.vm_plan.vms[vm_idx].devices[0];
    let cfg = emu
        .prep
        .configs
        .iter()
        .find(|(d, _)| *d == dev)
        .unwrap()
        .1
        .clone();

    // The reload's config push is in flight (scheduled at now+downtime)
    // when the hosting VM dies. The push lands on a powered-off device
    // and is dropped; recovery replays the prepared config instead.
    emu.reload(dev, cfg, false);
    emu.fail_and_recover_vm(vm_idx)
        .expect("failure mid-reload recovers");
    emu.settle()
        .expect("converges despite the lost config push");
    let st = emu.pull_states(dev).expect("device restored");
    assert!(st.up);
    assert!(st.fib_prefixes > 100);
}

#[test]
fn heartbeat_misses_and_backoff_are_journaled() {
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(7),
        FaultKind::VmSlowRestart {
            vm: 1,
            failed_attempts: 1,
        },
    );
    let (_, emu) = s_dc(6, plan);

    // Detection: exactly miss_threshold consecutive misses, then death.
    assert_eq!(
        emu.journal.misses_for(1),
        HealthPolicy::default().miss_threshold
    );
    assert!(emu.journal.declared_dead(1));

    // Bounded backoff: attempt 1 fails, attempt 2 (after a doubled
    // delay) succeeds.
    let attempts: Vec<(u32, SimDuration)> = emu
        .journal
        .events
        .iter()
        .filter_map(|e| match e.kind {
            JournalKind::RebootAttempt {
                vm: 1,
                attempt,
                backoff,
            } => Some((attempt, backoff)),
            _ => None,
        })
        .collect();
    assert_eq!(
        attempts,
        vec![
            (1, SimDuration::from_secs(2)),
            (2, SimDuration::from_secs(4)),
        ]
    );
    let recoveries = emu.journal.recoveries();
    assert_eq!(recoveries.len(), 1);
    assert!(recoveries[0].1 > SimDuration::ZERO);
    assert_eq!(emu.journal.max_recovery_latency(), Some(recoveries[0].1));
}

#[test]
fn delayed_heartbeats_below_threshold_are_tolerated() {
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(3),
        FaultKind::DelayedHeartbeat { vm: 2, misses: 2 },
    );
    let (_, emu) = s_dc(7, plan);
    assert_eq!(emu.journal.misses_for(2), 2);
    assert!(
        !emu.journal.declared_dead(2),
        "below the threshold the monitor must not overreact"
    );
    assert!(emu.journal.recoveries().is_empty());
}

#[test]
fn speaker_crash_restarts_with_fresh_epoch_and_resyncs() {
    let (_, mut emu) = s_dc(8, FaultPlan::default());
    let speaker = emu.prep.speaker_plan.scripts[0].0;
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(10),
        FaultKind::SpeakerCrash { device: speaker },
    );
    let report = emu.run_fault_plan(&plan).expect("plan executes");
    assert_eq!(report.injected, 1);

    let epochs: Vec<u64> = emu
        .journal
        .events
        .iter()
        .filter_map(|e| match e.kind {
            JournalKind::SpeakerRestarted { device, epoch } if device == speaker.0 => Some(epoch),
            _ => None,
        })
        .collect();
    assert_eq!(epochs, vec![1], "restart must bump the incarnation epoch");
    // The restarted speaker's routes came back: externally originated
    // prefixes are reachable again after resync.
    let st = emu.pull_states(speaker).expect("speaker back");
    assert!(st.up);
}

#[test]
fn post_recovery_fibs_are_bit_identical_to_a_fault_free_run() {
    // The acceptance guarantee: inject a VM failure + recovery, settle,
    // and every FIB in the network equals the FIB of an emulation that
    // never saw the fault.
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(20),
        FaultKind::VmCrash { vm: 1 }, //
    );
    let (dc, faulted) = s_dc(42, plan);
    let (_, mut clean) = s_dc(42, FaultPlan::default());
    clean.settle().expect("clean run settles");

    assert!(!faulted.journal.recoveries().is_empty());
    for (id, d) in dc.topo.devices() {
        match (clean.sim.fib(id), faulted.sim.fib(id)) {
            (None, None) => {}
            (Some(fa), Some(fb)) => {
                assert_eq!(fa, fb, "post-recovery FIB diverged on {}", d.name);
            }
            _ => panic!("OS presence differs on {}", d.name),
        }
    }
}
