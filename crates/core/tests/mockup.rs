//! End-to-end orchestrator tests: Prepare → Mockup → APIs → Clear.

use crystalnet::{
    mockup, prepare, BoundaryMode, Emulation, MockupOptions, PlanOptions, SpeakerSource,
};
use crystalnet_dataplane::ForwardDecision;
use crystalnet_net::ClosParams;
use crystalnet_routing::{MgmtCommand, MgmtResponse};
use crystalnet_sim::SimDuration;
use std::sync::Arc;

fn s_dc_emulation_opts(
    seed: u64,
    target_vms: Option<u32>,
    workers: usize,
) -> (crystalnet_net::ClosTopology, Emulation) {
    let dc = ClosParams::s_dc().build();
    let prep = prepare(
        &dc.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions {
            target_vms,
            ..PlanOptions::default()
        },
    );
    let emu = mockup(
        Arc::new(prep),
        MockupOptions::builder().seed(seed).workers(workers).build(),
    );
    (dc, emu)
}

fn s_dc_emulation(seed: u64, target_vms: Option<u32>) -> (crystalnet_net::ClosTopology, Emulation) {
    s_dc_emulation_opts(seed, target_vms, 1)
}

#[test]
fn s_dc_mockup_reaches_route_ready_within_paper_bounds() {
    let (_, emu) = s_dc_emulation(1, Some(5));
    let m = emu.metrics;
    // Network-ready < 2 minutes (§8.2).
    assert!(
        m.network_ready < SimDuration::from_mins(2),
        "network-ready {} too slow",
        m.network_ready
    );
    // Whole-Mockup median < 32 minutes (Figure 8); S-DC is far faster.
    assert!(m.mockup < SimDuration::from_mins(32), "mockup {}", m.mockup);
    assert!(m.route_ready > SimDuration::ZERO);
    assert!(m.route_ops > 10_000);
}

#[test]
fn mockup_produces_full_reachability_and_working_apis() {
    let (dc, mut emu) = s_dc_emulation(2, Some(5));

    // Every emulated device is up and listed.
    let listed = emu.list();
    assert_eq!(
        listed.len(),
        dc.internal_device_count() + dc.externals.len()
    );
    assert!(listed.iter().all(|(_, _, up)| *up));

    // PullStates: ToRs carry full tables.
    let tor = dc.pods[0].tors[0];
    let st = emu.pull_states(tor).unwrap();
    assert!(st.up);
    assert!(st.fib_prefixes > 150, "ToR fib {}", st.fib_prefixes);

    // Management login by DNS name works like production.
    let name = dc.topo.device(tor).name.clone();
    let resp = emu
        .login_and_run(&name, MgmtCommand::ShowBgpSummary)
        .unwrap();
    let MgmtResponse::BgpSummary(rows) = resp else {
        panic!("unexpected response")
    };
    assert_eq!(rows.len(), 4, "ToR peers with its 4 leaves");
    assert!(rows.iter().all(|(_, established, _)| *established));

    // Packet telemetry: ToR-to-ToR probe crosses the fabric and lands.
    let src = dc.topo.device(tor).originated[1].nth(5);
    let dst_tor = dc.pods[5].tors[15];
    let dst = dc.topo.device(dst_tor).originated[1].nth(9);
    let sig = emu.inject_packet(tor, src, dst);
    let (path, outcome) = emu.pull_packets(sig).expect("probe traced");
    assert_eq!(outcome, ForwardDecision::Deliver);
    assert_eq!(path.first(), Some(&tor));
    assert_eq!(path.last(), Some(&dst_tor));
    assert!(path.len() >= 4, "probe must cross the fabric: {path:?}");

    // PullConfig returns renderable production config.
    let cfg = emu.pull_config(tor).unwrap();
    assert!(cfg.contains("router bgp"));

    // The management overlay is loop-free and resolves every device.
    assert!(emu.mgmt.is_tree());
    assert_eq!(emu.mgmt.device_count(), listed.len());
}

#[test]
fn disconnect_and_connect_propagate() {
    let (dc, mut emu) = s_dc_emulation(3, Some(5));
    let tor = dc.pods[0].tors[0];
    let subnet = dc.topo.device(tor).originated[1];
    let spine = dc.spine_groups[0][0];

    let before = emu.pull_states(spine).unwrap().fib_prefixes;
    // Cut one ToR uplink.
    let (lid, _, _) = dc.topo.neighbors(tor).next().unwrap();
    emu.disconnect(lid);
    emu.settle().expect("re-converges");
    // The spine still reaches the ToR subnet (3 leaves remain).
    let fib = emu.sim.fib(spine).unwrap();
    let (_, entry) = fib.lookup(subnet.nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 3);

    emu.connect(lid);
    emu.settle().expect("re-converges");
    let fib = emu.sim.fib(spine).unwrap();
    let (_, entry) = fib.lookup(subnet.nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 4);
    assert_eq!(emu.pull_states(spine).unwrap().fib_prefixes, before);
}

#[test]
fn reload_two_layer_beats_strawman() {
    let (dc, mut emu) = s_dc_emulation(4, Some(5));
    let leaf = dc.pods[0].leaves[0];
    let cfg = emu
        .prep
        .configs
        .iter()
        .find(|(d, _)| *d == leaf)
        .unwrap()
        .1
        .clone();

    let fast = emu.reload(leaf, cfg.clone(), false);
    emu.settle().unwrap();
    let slow = emu.reload(leaf, cfg, true);
    emu.settle().unwrap();

    // §8.3: two-layer ≈ 3 s; the strawman pays ~400 ms per interface to
    // recreate the namespace (the paper's ≥15 extra seconds corresponds
    // to its higher-radix devices; this S-DC leaf has 20 interfaces).
    assert!(fast <= SimDuration::from_secs(4), "two-layer reload {fast}");
    let ifaces = dc.topo.device(leaf).ifaces.len() as u64;
    assert!(
        slow >= fast + SimDuration::from_millis(400) * ifaces,
        "strawman {slow} vs two-layer {fast}"
    );
    // The device comes back with full state.
    let st = emu.pull_states(leaf).unwrap();
    assert!(st.up);
    assert!(st.fib_prefixes > 150);
}

#[test]
fn vm_failure_recovers_within_paper_bounds() {
    let (dc, mut emu) = s_dc_emulation(5, Some(10));
    // Pick the VM hosting the most devices.
    let vm_idx = (0..emu.prep.vm_plan.vms.len())
        .max_by_key(|&i| emu.prep.vm_plan.vms[i].devices.len())
        .unwrap();
    let victims = emu.prep.vm_plan.vms[vm_idx].devices.clone();
    assert!(!victims.is_empty());

    let recovery = emu.fail_and_recover_vm(vm_idx).expect("live VM in range");
    // §8.3: recovery between 10 and 50 seconds depending on density.
    assert!(
        recovery >= SimDuration::from_secs(2) && recovery <= SimDuration::from_secs(60),
        "recovery {recovery}"
    );
    emu.settle().expect("network re-converges after recovery");
    for d in victims {
        let st = emu.pull_states(d).unwrap();
        assert!(st.up, "{} did not come back", st.hostname);
        assert!(
            st.fib_prefixes > 100,
            "{} has {} prefixes",
            st.hostname,
            st.fib_prefixes
        );
    }
    let _ = dc;
}

#[test]
fn clear_is_fast_and_resets_vms() {
    let (_, mut emu) = s_dc_emulation(6, Some(5));
    let clear = emu.clear();
    // §8.2: clear latency under 2 minutes.
    assert!(clear < SimDuration::from_mins(2), "clear {clear}");
    assert!(emu.engines.iter().all(|e| e.containers().is_empty()));
    let cost = emu.destroy();
    assert!(cost > 0.0);
}

#[test]
fn cpu_series_shows_bring_up_then_quiesce() {
    let (_, emu) = s_dc_emulation(7, Some(5));
    let series = emu.cpu_p95_series();
    assert!(!series.is_empty());
    let peak = series.iter().cloned().fold(0.0, f64::max);
    assert!(peak > 0.3, "bring-up must load the VMs (peak {peak})");
    // The tail (post-convergence) is quiet.
    let tail = *series.last().unwrap();
    assert!(tail < 0.2, "post-convergence CPU should be low ({tail})");
}

#[test]
fn parallel_workers_match_serial_bit_for_bit() {
    // Same seed, same prep: a 4-worker mockup must reproduce the serial
    // one exactly — bring-up instants, work counters, and every FIB —
    // including through a disconnect/settle cycle after convergence.
    let (dc, mut serial) = s_dc_emulation_opts(42, Some(5), 1);
    let (_, mut par) = s_dc_emulation_opts(42, Some(5), 4);

    assert_eq!(serial.metrics.network_ready, par.metrics.network_ready);
    assert_eq!(serial.metrics.route_ready, par.metrics.route_ready);
    assert_eq!(serial.metrics.route_ops, par.metrics.route_ops);
    assert_eq!(serial.now(), par.now());

    let tor = dc.pods[0].tors[0];
    let (lid, _, _) = dc.topo.neighbors(tor).next().unwrap();
    for emu in [&mut serial, &mut par] {
        emu.disconnect(lid);
        emu.settle().expect("re-converges after disconnect");
        emu.connect(lid);
        emu.settle().expect("re-converges after reconnect");
    }
    assert_eq!(serial.now(), par.now(), "post-flap clocks diverged");

    for (id, d) in dc.topo.devices() {
        let (sa, sb) = (serial.sim.fib(id), par.sim.fib(id));
        match (sa, sb) {
            (None, None) => {}
            (Some(fa), Some(fb)) => assert_eq!(fa, fb, "FIB mismatch on {}", d.name),
            _ => panic!("OS presence differs on {}", d.name),
        }
    }
}

#[test]
fn seeds_change_latency_but_not_fib_outcome() {
    let (dc, emu_a) = s_dc_emulation(10, Some(5));
    let (_, emu_b) = s_dc_emulation(11, Some(5));
    // Timing differs across seeds...
    assert_ne!(emu_a.metrics.mockup, emu_b.metrics.mockup);
    // ...but converged forwarding state agrees (ECMP-set comparison).
    for (id, d) in dc.topo.devices() {
        if d.role == crystalnet_net::Role::External {
            continue;
        }
        let fa = emu_a.sim.fib(id).unwrap();
        let fb = emu_b.sim.fib(id).unwrap();
        assert!(
            crystalnet_dataplane::fibs_equal(
                fa,
                fb,
                &crystalnet_dataplane::CompareOptions::strict()
            ),
            "FIB mismatch on {}",
            d.name
        );
    }
}
