//! Copy-on-write fork tests: the isolation guarantee (no change or
//! fault applied to a fork may perturb the parent), the rollback
//! guarantee (dropping N forks leaves the baseline byte-identical to an
//! untouched run), and the commit-path differential guarantee (a
//! committed fork lands on the same FIBs as a cold boot of the final
//! state, across worker counts).

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_dataplane::Fib;
use crystalnet_net::fixtures::fig7;
use crystalnet_net::{DeviceId as Dev, LinkId};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Whole-network fig. 7 mockup.
fn fig7_emu(seed: u64, workers: usize) -> Emulation {
    let f = fig7();
    let prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    mockup(
        Arc::new(prep),
        MockupOptions::builder().seed(seed).workers(workers).build(),
    )
}

/// Every emulated device's full FIB, keyed by id.
fn fib_map(emu: &Emulation) -> BTreeMap<Dev, Fib> {
    let mut out = BTreeMap::new();
    for &dev in emu.sandboxes.keys() {
        if let Some(os) = emu.sim.os(dev) {
            out.insert(dev, os.fib().clone());
        }
    }
    out
}

/// The prepared config of one device, cloned for editing.
fn prepared_config(emu: &Emulation, dev: Dev) -> crystalnet_config::DeviceConfig {
    emu.prep
        .configs
        .iter()
        .find(|(d, _)| *d == dev)
        .map(|(_, c)| c.clone())
        .expect("device has a prepared config")
}

/// A config update that adds one announced network to a ToR.
fn announce_extra(emu: &Emulation, tor: Dev, third_octet: u8) -> ChangeSet {
    let mut cfg = prepared_config(emu, tor);
    cfg.bgp
        .as_mut()
        .unwrap()
        .networks
        .push(format!("10.77.{third_octet}.0/24").parse().unwrap());
    ChangeSet::new().config_update(tor, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn random_changes_and_faults_on_forks_never_touch_the_parent(
        change_kind in 0u8..4,
        link_ix in 0u32..64,
        tor_ix in 0u32..6,
        fault_seed in 0u64..1024,
        fault_events in 1usize..4,
    ) {
        let f = fig7();
        let emu = fig7_emu(7, 1);
        let fibs_before = fib_map(&emu);
        let report_before = emu.pull_report().to_json();
        let journal_before = emu.journal.events.len();

        let links: Vec<LinkId> = f.topo.links().map(|(lid, _)| lid).collect();
        let lid = links[link_ix as usize % links.len()];
        let tor = f.tors[tor_ix as usize % f.tors.len()];

        // A random change set on one fork...
        let mut fork = emu.fork();
        match change_kind {
            0 => {
                fork.apply(&ChangeSet::new().link_down(lid)).unwrap();
            }
            1 => {
                fork.apply(&announce_extra(&emu, tor, (tor_ix % 250) as u8))
                    .unwrap();
            }
            2 => {
                fork.apply(&ChangeSet::new().device_remove(tor)).unwrap();
            }
            _ => {
                fork.apply(&ChangeSet::new().link_down(lid)).unwrap();
                fork.apply(&ChangeSet::new().link_up(lid)).unwrap();
            }
        }

        // ...and a random fault drill on another, concurrently alive.
        let mut drill = emu.fork();
        let plan = FaultPlan::generate(
            fault_seed,
            SimDuration::from_secs(30),
            emu.prep.vm_plan.vms.len(),
            &links,
            &[],
            fault_events,
        );
        // The drill may legitimately fail to settle on hostile plans; the
        // property under test is the *parent's* integrity either way.
        let _ = drill.inject_faults(&plan);

        prop_assert_eq!(&fib_map(&emu), &fibs_before, "fork perturbed parent FIBs");
        prop_assert_eq!(
            &emu.pull_report().to_json(),
            &report_before,
            "fork perturbed the parent's canonical report bytes"
        );
        prop_assert_eq!(emu.journal.events.len(), journal_before);

        // Both forks diverged for real — the isolation is not vacuous.
        if change_kind != 3 {
            prop_assert!(!fork.diff_against_parent().is_empty());
        }
        if !plan.is_empty() {
            prop_assert!(drill.emulation().journal.events.len() > journal_before);
        }
    }
}

#[test]
fn n_dropped_forks_leave_the_baseline_byte_identical() {
    let f = fig7();
    let emu = fig7_emu(17, 1);
    let untouched = fig7_emu(17, 1);

    let lid = f.topo.links().next().map(|(lid, _)| lid).unwrap();
    for i in 0..4u8 {
        let mut fork = emu.fork();
        match i % 3 {
            0 => {
                fork.apply(&ChangeSet::new().link_down(lid)).unwrap();
            }
            1 => {
                fork.apply(&announce_extra(&emu, f.tors[i as usize], i))
                    .unwrap();
            }
            _ => {
                fork.apply(&ChangeSet::new().device_remove(f.tors[5]))
                    .unwrap();
            }
        }
        assert!(!fork.diff_against_parent().is_empty());
        drop(fork); // rollback ≡ drop
    }

    assert_eq!(
        fib_map(&emu),
        fib_map(&untouched),
        "dropped forks must leave the baseline exactly as an untouched run"
    );
    assert_eq!(
        emu.pull_report().to_json(),
        untouched.pull_report().to_json(),
        "canonical report bytes diverged after dropped forks"
    );
    assert_eq!(emu.now(), untouched.now());
    assert_eq!(
        emu.sim.engine.events_pending(),
        untouched.sim.engine.events_pending()
    );
}

#[test]
fn committed_fork_matches_cold_boot_across_workers() {
    let f = fig7();
    let t1 = f.tors[0];
    let mut per_worker: Vec<BTreeMap<Dev, Fib>> = Vec::new();

    for workers in [1usize, 4] {
        let mut emu = fig7_emu(7, workers);
        let changes = announce_extra(&emu, t1, 0);
        let final_cfg = {
            let mut cfg = prepared_config(&emu, t1);
            cfg.bgp
                .as_mut()
                .unwrap()
                .networks
                .push("10.77.0.0/24".parse().unwrap());
            cfg
        };

        let mut fork = emu.fork();
        fork.apply(&changes).expect("network edit applies on fork");
        let deltas = fork.commit(&mut emu);
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].total_fib_changes() > 0);

        // Differential: a cold mockup whose prepared config is already
        // the final one must land on byte-identical FIBs everywhere.
        let mut prep = prepare(
            &f.topo,
            &[],
            BoundaryMode::WholeNetwork,
            SpeakerSource::OriginatedOnly,
            &PlanOptions::default(),
        );
        for (d, c) in &mut prep.configs {
            if *d == t1 {
                *c = final_cfg.clone();
            }
        }
        let cold = mockup(
            Arc::new(prep),
            MockupOptions::builder().seed(7).workers(workers).build(),
        );
        assert_eq!(
            fib_map(&emu),
            fib_map(&cold),
            "committed fork diverged from cold full settle (workers={workers})"
        );
        per_worker.push(fib_map(&emu));
    }
    assert_eq!(per_worker[0], per_worker[1], "workers must not change FIBs");
}

#[test]
fn committed_link_down_matches_full_resettle_across_workers() {
    let f = fig7();
    let lid = f
        .topo
        .links()
        .find(|(_, l)| {
            let pair = [l.a.device, l.b.device];
            pair.contains(&f.spines[0]) && pair.contains(&f.leaves[0])
        })
        .map(|(lid, _)| lid)
        .expect("fig7 has an s1-l1 link");

    let mut per_worker: Vec<BTreeMap<Dev, Fib>> = Vec::new();
    for workers in [1usize, 4] {
        let mut emu = fig7_emu(11, workers);
        let mut fork = emu.fork();
        let delta = fork
            .apply(&ChangeSet::new().link_down(lid))
            .expect("link-down applies on fork");
        assert!(delta.total_fib_changes() > 0);
        fork.commit(&mut emu);

        // Reference: the pre-existing full path — fresh mockup, Table 2
        // Disconnect, full settle.
        let mut cold = fig7_emu(11, workers);
        cold.disconnect(lid);
        cold.settle().expect("cold path converges");
        assert_eq!(
            fib_map(&emu),
            fib_map(&cold),
            "committed link-down diverged from full settle (workers={workers})"
        );
        per_worker.push(fib_map(&emu));
    }
    assert_eq!(per_worker[0], per_worker[1]);
}

#[test]
fn rehearse_is_a_fork_per_step_wrapper() {
    // The multi-step wrapper and a hand-rolled fork/commit loop must be
    // indistinguishable: same per-step deltas, same final FIBs.
    let f = fig7();
    let lid = f
        .topo
        .links()
        .find(|(_, l)| {
            let pair = [l.a.device, l.b.device];
            pair.contains(&f.spines[0]) && pair.contains(&f.leaves[0])
        })
        .map(|(lid, _)| lid)
        .unwrap();
    let steps = [
        RehearsalStep::new("drain", ChangeSet::new().link_down(lid)),
        RehearsalStep::new("restore", ChangeSet::new().link_up(lid)),
    ];

    let mut via_rehearse = fig7_emu(13, 1);
    let report = via_rehearse.rehearse(&steps).expect("plan runs");

    let mut via_forks = fig7_emu(13, 1);
    let mut manual: Vec<ConvergenceDelta> = Vec::new();
    for step in &steps {
        let mut fork = via_forks.fork();
        fork.apply(&step.changes).expect("step applies");
        manual.extend(fork.commit(&mut via_forks));
    }

    assert_eq!(report.steps.len(), manual.len());
    for ((name, d), m) in report.steps.iter().zip(&manual) {
        assert_eq!(d.fib_changes, m.fib_changes, "step {name} diverged");
        assert_eq!(d.settled_at, m.settled_at, "step {name} settled apart");
        assert_eq!(d.dirty, m.dirty);
    }
    assert_eq!(fib_map(&via_rehearse), fib_map(&via_forks));
}

#[test]
fn concurrent_forks_rehearse_on_worker_threads() {
    let f = fig7();
    let emu = fig7_emu(23, 1);
    let before = fib_map(&emu);
    let lid = f.topo.links().next().map(|(lid, _)| lid).unwrap();

    let mut drain = emu.fork();
    let mut announce = emu.fork();
    let t2 = f.tors[1];
    let announce_set = announce_extra(&emu, t2, 9);
    let (drain, announce) = std::thread::scope(|s| {
        let a = s.spawn(move || {
            drain.apply(&ChangeSet::new().link_down(lid)).unwrap();
            drain
        });
        let b = s.spawn(move || {
            announce.apply(&announce_set).unwrap();
            announce
        });
        (a.join().unwrap(), b.join().unwrap())
    });

    // Each child saw only its own plan; the parent saw neither.
    assert!(!drain.diff_against_parent().is_empty());
    assert!(announce
        .diff_against_parent()
        .values()
        .flatten()
        .all(|c| c.prefix == "10.77.9.0/24".parse().unwrap()));
    assert!(drain
        .diff_against_parent()
        .values()
        .flatten()
        .all(|c| c.prefix != "10.77.9.0/24".parse().unwrap()));
    assert_eq!(fib_map(&emu), before);
}

#[test]
fn snapshot_describes_the_fork_point() {
    let emu = fig7_emu(29, 1);
    let snap = emu.snapshot();
    assert_eq!(snap.devices, 14);
    assert_eq!(snap.at, emu.now());
    assert_eq!(snap.seed, 29);
    assert!(snap.fib_entries > 0);
    assert!(snap.rib_entries >= snap.fib_entries);
    assert_eq!(snap.events_executed, emu.sim.engine.events_executed());
    // Whole-network boundaries have no static speakers to epoch-track.
    assert!(snap.speaker_epochs.is_empty());
    assert!(snap.summary().contains("14 device(s)"));

    // A fork's base is the same snapshot, and a fresh fork's child reads
    // back the identical state.
    let fork = emu.fork();
    assert_eq!(fork.base().fib_entries, snap.fib_entries);
    assert_eq!(fork.base().pending_events, snap.pending_events);
    assert!(fork.diff_against_parent().is_empty());
    assert_eq!(fib_map(fork.emulation()), fib_map(&emu));
}

#[test]
fn fork_of_a_fork_keeps_every_generation_isolated() {
    let f = fig7();
    let emu = fig7_emu(31, 1);
    let lid = f.topo.links().next().map(|(lid, _)| lid).unwrap();

    let mut child = emu.fork();
    child.apply(&ChangeSet::new().link_down(lid)).unwrap();
    let child_fibs = fib_map(child.emulation());

    // Branch a grandchild off the drained child and restore the link
    // there: the child must stay drained, the parent pristine.
    let mut grandchild = child.emulation().fork();
    grandchild.apply(&ChangeSet::new().link_up(lid)).unwrap();

    assert_eq!(fib_map(child.emulation()), child_fibs);
    assert_eq!(fib_map(&emu), fib_map(grandchild.emulation()));
    assert!(!grandchild.diff_against_parent().is_empty() || !child_fibs.is_empty());
}
