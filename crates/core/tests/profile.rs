//! Run-profiler integration tests: the structural determinism contract
//! of the `profile` / `scaling_diagnosis` / `memory` report sections,
//! the zero-cost-when-off differential, the array-valued per-shard
//! diagnostics (and their legacy flat-key expansion), and the fork
//! copy-on-write accounting.
//!
//! The contract under test: wall-clock *values* in those sections vary
//! run to run, but their key structure is byte-identical across worker
//! counts — so operators can diff the shape of two investigations even
//! when the numbers differ.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_dataplane::Fib;
use crystalnet_net::{ClosParams, ClosTopology, DeviceId};
use crystalnet_telemetry::json_key_structure;
use crystalnet_telemetry::profile::keys;
use serde_json::Value;
use std::collections::BTreeMap;

fn build(topo: &ClosTopology, options: MockupOptions) -> Emulation {
    let prep = prepare(
        &topo.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    mockup(Arc::new(prep), options)
}

fn fib_map(emu: &Emulation) -> BTreeMap<DeviceId, Fib> {
    let mut devs: Vec<DeviceId> = emu.sandboxes.keys().copied().collect();
    devs.sort_unstable_by_key(|d| d.0);
    devs.into_iter()
        .filter_map(|d| emu.sim.os(d).map(|os| (d, os.fib().clone())))
        .collect()
}

/// The key structure of one named section of the full JSON export.
fn section_structure(report: &RunReport, section: &str) -> String {
    let full: Value =
        serde_json::from_str(&report.to_json_full()).expect("full report is valid JSON");
    let v = full
        .get(section)
        .unwrap_or_else(|| panic!("full report carries a `{section}` section"));
    json_key_structure(v)
}

fn assert_profile_shape_stable(topo: &ClosTopology) {
    let mut shapes: Vec<(String, String, String)> = Vec::new();
    for workers in [1usize, 4] {
        let emu = build(
            topo,
            MockupOptions::builder()
                .seed(42)
                .workers(workers)
                .profiling(true)
                .build(),
        );
        let report = emu.pull_report();

        let profile = report.profile.as_ref().expect("profiling run has profile");
        for key in keys::ALL {
            assert!(
                profile.entries.contains_key(*key),
                "profile must always carry `{key}` (workers={workers})"
            );
        }
        assert!(
            profile.wall_ns(keys::MOCKUP) > 0,
            "mockup wall must be nonzero (workers={workers})"
        );
        let scaling = report
            .scaling
            .as_ref()
            .expect("profiling run has diagnosis");
        if workers > 1 {
            assert_eq!(scaling.shards as usize, workers, "diagnosis shard count");
            assert!(!scaling.critical_path.is_empty(), "parallel run has a path");
        } else {
            assert_eq!(scaling.shards, 1, "serial diagnosis covers one shard");
        }
        // The Chrome-trace view must itself be valid JSON.
        let trace: Value = serde_json::from_str(&scaling.chrome_trace_json())
            .expect("chrome trace view is valid JSON");
        assert!(trace.get("traceEvents").is_some());

        shapes.push((
            section_structure(&report, "profile"),
            section_structure(&report, "scaling_diagnosis"),
            section_structure(&report, "memory"),
        ));
    }
    assert_eq!(
        shapes[0], shapes[1],
        "profile/scaling/memory key structure must be byte-identical across workers"
    );
}

#[test]
fn profile_structure_is_identical_across_workers_sdc() {
    assert_profile_shape_stable(&ClosParams::s_dc().build());
}

/// The M-DC acceptance run — expensive, so `#[ignore]`d here and run in
/// release by the CI `bench-trend` job.
#[test]
#[ignore = "M-DC scale: run explicitly (CI runs it in release)"]
fn profile_structure_is_identical_across_workers_mdc() {
    assert_profile_shape_stable(&ClosParams::m_dc().build());
}

#[test]
fn profiling_off_leaves_fibs_and_canonical_bytes_unchanged() {
    let topo = ClosParams::s_dc().build();
    let plain = build(
        &topo,
        MockupOptions::builder()
            .seed(42)
            .workers(4)
            .telemetry(true)
            .build(),
    );
    let profiled = build(
        &topo,
        MockupOptions::builder()
            .seed(42)
            .workers(4)
            .profiling(true)
            .build(),
    );

    assert_eq!(
        fib_map(&plain),
        fib_map(&profiled),
        "profiling must not perturb a single FIB"
    );
    let (r_plain, r_profiled) = (plain.pull_report(), profiled.pull_report());
    assert_eq!(
        r_plain.to_json(),
        r_profiled.to_json(),
        "canonical report bytes must be identical with profiling on or off"
    );
    // The extra sections exist only on the profiled side, and only in
    // the full export.
    assert!(r_plain.profile.is_none() && r_plain.memory.is_none());
    assert!(r_profiled.profile.is_some() && r_profiled.memory.is_some());
    assert!(!r_profiled.to_json().contains("\"profile\""));
    assert!(r_profiled.to_json_full().contains("\"scaling_diagnosis\""));
}

#[test]
fn shard_diagnostics_are_arrays_with_legacy_expansion() {
    let topo = ClosParams::s_dc().build();
    let emu = build(
        &topo,
        MockupOptions::builder()
            .seed(42)
            .workers(4)
            .telemetry(true)
            .build(),
    );
    let report = emu.pull_report();

    for key in [
        "sim.parallel.shard.events_executed",
        "sim.parallel.shard.queue_high_water",
        "sim.parallel.shard.idle_ns",
    ] {
        let values = report
            .diagnostic_arrays
            .get(key)
            .unwrap_or_else(|| panic!("parallel run must record `{key}`"));
        assert_eq!(values.len(), 4, "`{key}` carries one entry per shard");
    }
    let executed = &report.diagnostic_arrays["sim.parallel.shard.events_executed"];
    assert!(
        executed.iter().sum::<u64>() > 0,
        "shards must have executed events"
    );

    // Compatibility: the flat `shard{{i}}` keys older tooling consumed
    // expand from the arrays with identical data.
    let legacy = report.legacy_shard_diagnostics();
    for (i, v) in executed.iter().enumerate() {
        assert_eq!(
            legacy.get(&format!("sim.parallel.shard{i}.events_executed")),
            Some(v),
            "legacy expansion must match the array entry for shard {i}"
        );
    }
}

#[test]
fn fork_reports_carry_cow_accounting() {
    let topo = ClosParams::s_dc().build();
    let warm = build(
        &topo,
        MockupOptions::builder().seed(42).profiling(true).build(),
    );
    let fork = warm.fork();
    let cow = fork.cow_stats();
    assert!(cow.shared_bytes > 0, "fork must share the prepare spine");
    assert!(cow.copied_bytes > 0, "fork must deep-copy RIB/FIB state");
    assert!(
        (0.0..=1.0).contains(&cow.sharing_ratio()),
        "sharing ratio is a fraction"
    );

    let report = fork.pull_report();
    let mem = report.memory.as_ref().expect("profiled fork has memory");
    assert_eq!(
        mem.fork_cow.as_ref().map(|c| c.shared_bytes),
        Some(cow.shared_bytes),
        "fork report must surface the fork's own CoW stats"
    );
    // The parent's report has no fork_cow block content (it is not a fork).
    assert!(warm
        .pull_report()
        .memory
        .as_ref()
        .expect("profiled parent has memory")
        .fork_cow
        .is_none());
}
