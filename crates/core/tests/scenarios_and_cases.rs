//! The Table 1 incident suite and the §7 case studies must all behave as
//! the paper reports: the emulator catches every emulatable incident
//! class, and the case-study pipelines catch their injected bugs.

use crystalnet::{run_all_scenarios, run_case1, run_case2, RootCause, StepOutcome};

#[test]
fn table1_scenarios_detect_everything_emulatable() {
    let results = run_all_scenarios(42);
    assert_eq!(results.len(), 11);
    for r in &results {
        if r.name.contains("not emulatable") {
            assert!(!r.detected, "{} should be out of scope", r.name);
        } else {
            assert!(r.detected, "{} not detected: {}", r.name, r.detail);
        }
    }
    // The paper's comparison: software bugs and human-error *practice*
    // escape config verification, config bugs do not.
    for r in &results {
        match r.cause {
            RootCause::SoftwareBug | RootCause::HardwareFailure => {
                assert!(!r.verification_covers, "{}", r.name);
            }
            RootCause::ConfigBug => assert!(r.verification_covers, "{}", r.name),
            RootCause::HumanError => {}
        }
    }
    // All four Table 1 root-cause classes are represented.
    for cause in [
        RootCause::SoftwareBug,
        RootCause::ConfigBug,
        RootCause::HumanError,
        RootCause::HardwareFailure,
    ] {
        assert!(results.iter().any(|r| r.cause == cause));
    }
}

#[test]
fn case1_rehearsal_catches_tool_bug_then_final_plan_is_clean() {
    let report = run_case1(7);
    assert!(report.bugs_caught >= 1, "the buggy tool must be caught");
    assert!(
        report
            .rehearsal
            .iter()
            .any(|(_, o)| matches!(o, StepOutcome::Failed { reverted: true, .. })),
        "the failed step must have been reverted: {:?}",
        report.rehearsal
    );
    assert!(report.no_disruption, "final plan: {:?}", report.final_run);
    assert!(report.vms_used > 0);
}

#[test]
fn case2_pipeline_catches_all_three_dev_build_bugs() {
    let report = run_case2(9);
    assert_eq!(
        report.bugs.len(),
        3,
        "expected 3 bugs, got {:?}",
        report.bugs
    );
    assert!(report.bugs.iter().any(|b| b.contains("default route")));
    assert!(report.bugs.iter().any(|b| b.contains("ARP")));
    assert!(report.bugs.iter().any(|b| b.contains("crashed")));
    assert!(report.control_clean, "released build must pass clean");
}
