//! Observability determinism tests: the run report is a pure function of
//! the seed — byte-identical across worker counts and repetitions — and a
//! disabled recorder costs nothing and changes nothing.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_net::ClosTopology;

fn s_dc(seed: u64, workers: usize, telemetry: bool) -> (ClosTopology, Emulation) {
    let dc = crystalnet_net::ClosParams::s_dc().build();
    let prep = prepare(
        &dc.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions {
            target_vms: Some(16),
            ..PlanOptions::default()
        },
    );
    // One fault in the plan so the journal section is exercised too.
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(20),
        FaultKind::VmCrash { vm: 1 }, //
    );
    let emu = mockup(
        Arc::new(prep),
        MockupOptions::builder()
            .seed(seed)
            .workers(workers)
            .fault_plan(plan)
            .telemetry(telemetry)
            .build(),
    );
    (dc, emu)
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let (_, serial) = s_dc(7, 1, true);
    let (_, sharded) = s_dc(7, 4, true);

    let a = serial.pull_report().to_json();
    let b = sharded.pull_report().to_json();
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "canonical run report must not depend on the worker count"
    );

    // The canonical report deliberately has no execution-shape keys; those
    // live in the diagnostics section of `to_json_full` only.
    assert!(!a.contains("sim.parallel"));
    assert!(!a.contains("intern"));
    assert!(serial.pull_report().to_json_full().contains("diagnostics"));
}

#[test]
fn report_is_byte_identical_across_reps() {
    let (_, first) = s_dc(11, 2, true);
    let (_, second) = s_dc(11, 2, true);
    assert_eq!(
        first.pull_report().to_json(),
        second.pull_report().to_json(),
        "same seed + same workers must reproduce the report byte for byte"
    );
}

#[test]
fn report_carries_spans_counters_and_journal() {
    let (_, emu) = s_dc(3, 1, true);
    let report = emu.pull_report();
    assert!(report.enabled);

    let span_names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
    for expected in ["mockup", "boot", "recovery"] {
        assert!(
            span_names.contains(&expected),
            "missing span {expected:?} in {span_names:?}"
        );
    }
    // Per-device convergence spans carry a device id.
    assert!(report
        .spans
        .iter()
        .any(|s| s.name == "convergence" && s.device.is_some()));

    for counter in [
        "routing.devices_booted",
        "routing.bgp_updates_sent",
        "routing.frames_sent",
        "core.faults_injected",
        "core.recoveries",
    ] {
        assert!(
            report.counters.get(counter).copied().unwrap_or(0) > 0,
            "counter {counter:?} should be non-zero"
        );
    }

    // The journal section is globally time-sorted.
    assert!(!report.journal.is_empty());
    assert!(report.journal.windows(2).all(|w| w[0].at <= w[1].at));
    assert!(report.journal.iter().any(|e| e.name == "recovery_complete"));

    // Orchestrator lifecycle events are present with typed fields.
    assert!(report
        .events
        .iter()
        .any(|e| e.name == "network_ready" && e.field("vms").is_some()));
}

#[test]
fn disabled_recorder_yields_empty_report_and_identical_fibs() {
    let (dc, on) = s_dc(42, 1, true);
    let (_, off) = s_dc(42, 1, false);

    let report = off.pull_report();
    assert!(!report.enabled);
    assert!(report.is_empty());
    assert_eq!(report.summary(), "run report: telemetry disabled\n");

    // Turning telemetry off must not perturb the emulation itself.
    for (id, d) in dc.topo.devices() {
        match (on.sim.fib(id), off.sim.fib(id)) {
            (None, None) => {}
            (Some(fa), Some(fb)) => {
                assert_eq!(fa, fb, "telemetry toggled the FIB on {}", d.name);
            }
            _ => panic!("OS presence differs on {}", d.name),
        }
    }
    assert_eq!(on.metrics.route_ops, off.metrics.route_ops);
    assert_eq!(on.metrics.ready_at, off.metrics.ready_at);
}
