//! Causal tracing + route provenance tests: the merged trace export is a
//! pure function of the seed (byte-identical across worker counts and
//! repetitions), `explain_route` agrees with packet tracing, the ring
//! buffer caps memory deterministically, the Chrome export round-trips
//! through serde, and the runtime Lemma 5.1 audit passes on a real
//! speaker boundary.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_net::fixtures::fig7;
use crystalnet_net::DeviceId;
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::{OriginKind, UniformWorkModel};
use std::collections::BTreeSet;

fn fig7_emu(seed: u64, workers: usize, trace_capacity: usize) -> Emulation {
    let f = fig7();
    let prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    mockup(
        Arc::new(prep),
        MockupOptions::builder()
            .seed(seed)
            .workers(workers)
            .trace_capacity(trace_capacity)
            .build(),
    )
}

/// Injects the same probe in any emulation so packet hops join the trace.
fn probe(emu: &mut Emulation) {
    let f = fig7();
    let src = "10.7.0.5".parse().unwrap();
    let dst = "10.7.5.9".parse().unwrap();
    let _ = emu.inject_packet(f.tors[0], src, dst);
}

/// Flaps one ToR uplink so link transitions and re-convergence appear in
/// the trace.
fn flap(emu: &mut Emulation) {
    let f = fig7();
    let (lid, _, _) = f.topo.neighbors(f.tors[0]).next().unwrap();
    emu.disconnect(lid);
    emu.settle().expect("re-converges after disconnect");
    emu.connect(lid);
    emu.settle().expect("re-converges after reconnect");
}

#[test]
fn trace_export_is_byte_identical_across_worker_counts_and_reps() {
    let mut serial = fig7_emu(7, 1, 65_536);
    let mut sharded = fig7_emu(7, 4, 65_536);
    let mut again = fig7_emu(7, 4, 65_536);
    for emu in [&mut serial, &mut sharded, &mut again] {
        flap(emu);
        probe(emu);
    }

    let a = serial.trace_jsonl();
    let b = sharded.trace_jsonl();
    let c = again.trace_jsonl();
    assert!(!a.is_empty());
    assert_eq!(a, b, "JSONL trace must not depend on the worker count");
    assert_eq!(b, c, "JSONL trace must reproduce across repetitions");
    assert_eq!(
        serial.trace_chrome_json(),
        sharded.trace_chrome_json(),
        "Chrome trace must not depend on the worker count"
    );

    // The merged stream carries all the record families.
    for kind in [
        "boot_done",
        "link_state",
        "frame_rx",
        "fib_install",
        "packet_hop",
    ] {
        assert!(a.contains(kind), "trace is missing {kind:?} records");
    }
}

#[test]
fn capped_trace_is_still_deterministic_and_counts_drops() {
    let serial = fig7_emu(9, 1, 500);
    let sharded = fig7_emu(9, 4, 500);
    let a = serial.trace_jsonl();
    assert_eq!(
        a,
        sharded.trace_jsonl(),
        "newest-capped trace must not depend on the worker count"
    );
    assert_eq!(a.lines().count(), 500, "ring buffer keeps exactly the cap");

    let report = serial.pull_report();
    let emitted = report.counters["telemetry.trace_emitted"];
    let retained = report.counters["telemetry.trace_retained"];
    let dropped = report.counters["telemetry.trace_dropped"];
    assert_eq!(retained, 500);
    assert!(dropped > 0, "a 500-record cap must drop on fig7");
    assert_eq!(emitted, retained + dropped);

    // Capacity 0 is rejected eagerly instead of silently disabling
    // collection: `try_build` reports a typed error.
    assert!(matches!(
        MockupOptions::builder().trace_capacity(0).try_build(),
        Err(EmulationError::InvalidOption(_))
    ));
}

#[test]
fn explain_route_agrees_with_packet_trace() {
    let mut emu = fig7_emu(3, 1, 65_536);
    let f = fig7();
    let prefix: crystalnet_net::Ipv4Prefix = "10.7.5.0/24".parse().unwrap();

    // Every FIB entry on every device explains completely.
    for (id, d) in emu.topo.devices() {
        let Some(os) = emu.sim.os(id) else { continue };
        for (p, _) in os.routes_with_detail() {
            let ex = emu.explain_route(&d.name, p).expect("every entry explains");
            assert!(!ex.chain.is_empty(), "{}: empty chain for {p}", d.name);
            assert!(ex.prov_digest != 0);
        }
    }

    // The s1 explanation for T6's subnet starts at T6's announcement...
    let ex = emu.explain_route("s1", prefix).unwrap();
    assert_eq!(ex.origin_kind, OriginKind::Network);
    assert_eq!(ex.chain[0].hostname.as_deref(), Some("t6"));
    assert_eq!(ex.chain[0].router, emu.topo.device(f.tors[5]).loopback);
    assert_eq!(ex.as_path, vec![400, 506], "leaf AS then T6's origin AS");
    // ...and the chain reversed is an adjacency-valid forwarding path
    // from s1 toward the origin.
    let mut walk = vec![f.spines[0]];
    walk.extend(ex.chain.iter().rev().filter_map(|h| {
        h.hostname
            .as_deref()
            .and_then(|name| emu.topo.by_name(name))
    }));
    assert_eq!(walk.len(), ex.chain.len() + 1, "every hop resolves");
    for pair in walk.windows(2) {
        assert!(
            emu.topo.neighbor_devices(pair[0]).any(|n| n == pair[1]),
            "chain hop {:?} -> {:?} is not a topology edge",
            pair[0],
            pair[1]
        );
    }

    // A probe toward the prefix lands where the chain says it began, and
    // its first hop carries the provenance digest of the FIB entry s1
    // would use.
    let sig = emu.inject_packet(
        f.spines[0],
        emu.topo.device(f.spines[0]).loopback,
        prefix.nth(9),
    );
    let (path, outcome) = emu.pull_packets(sig).unwrap();
    assert_eq!(outcome, ForwardDecision::Deliver);
    assert_eq!(path.first(), Some(&f.spines[0]));
    assert_eq!(path.last(), Some(&f.tors[5]));
    let trace = emu.pull_trace();
    let hop0 = trace
        .iter()
        .find(|r| r.name == "packet_hop" && r.device == Some(f.spines[0].0))
        .expect("first hop is traced");
    let prov = hop0.fields.iter().find(|(k, _)| *k == "prov").unwrap();
    assert_eq!(prov.1, FieldValue::U64(ex.prov_digest));
}

#[test]
fn explain_route_failures_are_typed() {
    let emu = fig7_emu(5, 1, 1024);
    let absent: crystalnet_net::Ipv4Prefix = "192.0.2.0/24".parse().unwrap();
    match emu.explain_route("s1", absent) {
        Err(EmulationError::NoRoute { device, prefix }) => {
            assert_eq!(device, "s1");
            assert_eq!(prefix, absent);
        }
        other => panic!("expected NoRoute, got {other:?}"),
    }
    assert!(matches!(
        emu.explain_route("nonesuch", absent),
        Err(EmulationError::UnknownDevice(_))
    ));
}

#[test]
fn chrome_trace_round_trips_through_serde() {
    let mut emu = fig7_emu(2, 2, 4096);
    probe(&mut emu);

    let chrome = emu.trace_chrome_json();
    let doc: serde_json::Value = serde_json::from_str(&chrome).expect("valid JSON document");
    let events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), emu.pull_trace().len());
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "args"] {
            assert!(ev.get(key).is_some(), "event missing {key:?}: {ev:?}");
        }
    }

    // Every JSONL line is itself a parseable record with the id fields.
    let jsonl = emu.trace_jsonl();
    for line in jsonl.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
        assert!(v.get("at_ns").is_some() && v.get("id").is_some() && v.get("name").is_some());
    }
}

#[test]
fn boundary_audit_passes_and_explains_speaker_routes() {
    // Figure 7b boundary: emulate S1-2, L1-4, T1-4; L5/L6 become static
    // speakers replaying what the spines heard in production.
    let f = fig7();
    let mut prod = build_full_bgp_sim(
        &f.topo,
        Box::new(UniformWorkModel {
            boot: SimDuration::from_secs(1),
            ..UniformWorkModel::default()
        }),
    );
    prod.boot_all(SimTime::ZERO);
    prod.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::ZERO + SimDuration::from_mins(60),
    )
    .unwrap();
    let emulated: BTreeSet<DeviceId> = f
        .spines
        .iter()
        .chain(&f.leaves[..4])
        .chain(&f.tors[..4])
        .copied()
        .collect();
    let prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::Explicit(emulated),
        SpeakerSource::Snapshot(&prod),
        &PlanOptions::default(),
    );
    let emu = mockup(Arc::new(prep), MockupOptions::builder().seed(1).build());

    // Lemma 5.1, checked at runtime over every converged route's
    // provenance chain.
    emu.audit_boundary().expect("figure 7b boundary is safe");

    // A route that crossed the boundary explains as a speaker origin.
    let prefix: crystalnet_net::Ipv4Prefix = "10.7.4.0/24".parse().unwrap();
    let ex = emu.explain_route("s1", prefix).unwrap();
    assert_eq!(ex.origin_kind, OriginKind::Speaker);
    assert!(
        matches!(ex.chain[0].hostname.as_deref(), Some("l5" | "l6")),
        "speaker origin, got {:?}",
        ex.chain[0]
    );
    assert!(ex.render().contains("origin: speaker"));
}
