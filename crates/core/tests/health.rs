//! Continuous health-plane tests: the probe mesh catches a silent
//! blackhole the final-FIB differential cannot see, gauges and the
//! incident timeline are byte-identical across worker counts and
//! unchanged by profiling, the plane is fully passive when disabled,
//! builder knobs fail eagerly, the capped trace sink drops
//! deterministically under probe load, and a fork's rehearsed change
//! reports its own SLO impact without touching the parent.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_net::fixtures::fig7;
use crystalnet_telemetry::{assert_same_key_structure, json_deep_structure};
use serde_json::Value;
use std::collections::BTreeMap;

/// A probe mesh dense and fast enough that fig7 sees traffic through
/// every spine within a few virtual seconds.
fn probe_cfg() -> ProbeConfig {
    ProbeConfig {
        period: SimDuration::from_millis(500),
        pairs_per_round: 16,
        slo_window: 6,
        slo_loss_pct: 25,
        ttl: 16,
        churn_threshold: 10_000,
        seed: 0,
    }
}

fn fig7_emu(seed: u64, workers: usize, health: bool, plan: FaultPlan) -> Emulation {
    let f = fig7();
    let prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    let mut b = MockupOptions::builder()
        .seed(seed)
        .workers(workers)
        .fault_plan(plan);
    if health {
        b = b.health_config(probe_cfg());
    }
    mockup(Arc::new(prep), b.build())
}

fn assert_fibs_equal(a: &Emulation, b: &Emulation, what: &str) {
    for (id, d) in a.topo.devices() {
        match (a.sim.fib(id), b.sim.fib(id)) {
            (None, None) => {}
            (Some(fa), Some(fb)) => assert_eq!(fa, fb, "{what}: FIB diverged on {}", d.name),
            _ => panic!("{what}: OS presence differs on {}", d.name),
        }
    }
}

/// The acceptance scenario: a device keeps its control plane — BGP
/// sessions up, FIB converged and "correct" — while its dataplane
/// silently drops everything. The final-FIB differential is blind to
/// this by construction; only the live probe mesh catches it, and the
/// witness it produces carries the stale FIB entry's provenance digest.
#[test]
fn silent_blackhole_yields_a_witness_the_fib_differential_misses() {
    let f = fig7();
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(3),
        FaultKind::SilentBlackhole {
            device: f.spines[0],
        },
    );
    let mut faulted = fig7_emu(11, 1, true, plan);
    let mut clean = fig7_emu(11, 1, true, FaultPlan::default());
    // Watch the network: probes are non-causal, so `settle` alone never
    // advances them on a quiet fabric — `advance` does.
    faulted.advance(SimDuration::from_secs(20));
    clean.advance(SimDuration::from_secs(20));

    // The FIB differential alone does NOT flag the gray failure: every
    // FIB in the faulted run equals the fault-free run bit for bit.
    assert_fibs_equal(
        &faulted,
        &clean,
        "a silent blackhole must be invisible to the final-FIB differential",
    );
    // The clean run sees no gray failures. (It does see SLO breaches:
    // fig7's same-AS sibling pairs — s1/s2, l1/l2, … — are structurally
    // unreachable because eBGP loop prevention rejects routes carrying
    // the receiver's own AS, and the mesh truthfully reports their 100%
    // loss. Those breaches appear identically in both runs.)
    let gray = |emu: &Emulation| {
        emu.incidents()
            .into_iter()
            .filter(|ci| {
                matches!(
                    ci.incident.kind,
                    IncidentKind::Blackhole(_) | IncidentKind::ForwardingLoop { .. }
                )
            })
            .count()
    };
    assert_eq!(gray(&clean), 0, "clean run must see no gray failure");

    // The probe mesh does flag it: a Blackhole incident whose witness
    // names the dying device and the provenance digest of the FIB entry
    // it would have used.
    let health = faulted.pull_health();
    assert!(health.enabled);
    assert!(health.probes_lost > 0, "probes through s1 must die");
    let incidents = faulted.incidents();
    let blackholes: Vec<_> = incidents
        .iter()
        .filter_map(|ci| match &ci.incident.kind {
            IncidentKind::Blackhole(w) => Some(w),
            _ => None,
        })
        .collect();
    assert!(
        !blackholes.is_empty(),
        "watchdog must fire on the blackhole"
    );
    for w in &blackholes {
        assert_eq!(w.device, f.spines[0], "witness names the dying device");
        assert!(w.prefix.is_some(), "witness carries the matched prefix");
        assert!(
            w.prov_digest.is_some(),
            "witness carries the FIB entry's provenance digest"
        );
    }

    // The timeline correlates the firings to the injected fault.
    let caused: Vec<_> = incidents
        .iter()
        .filter(|ci| matches!(&ci.incident.kind, IncidentKind::Blackhole(_)))
        .collect();
    assert!(caused.iter().all(|ci| matches!(
        &ci.cause,
        Some(IncidentCause::Fault { description, .. }) if description.contains("blackhole")
    )));

    // Restoring forwarding heals the mesh: delivery resumes and the
    // blackhole watchdog goes silent (the structural same-AS losses
    // keep accruing, so total loss still grows).
    faulted.set_forwarding(f.spines[0], true).unwrap();
    let gray_before = gray(&faulted);
    faulted.advance(SimDuration::from_secs(20));
    let after = faulted.pull_health();
    assert_eq!(
        gray(&faulted),
        gray_before,
        "no blackhole fires after forwarding is restored"
    );
    assert!(after.probes_delivered > health.probes_delivered);
}

#[test]
fn health_exports_are_byte_identical_across_workers_and_profiling() {
    let f = fig7();
    let mk_plan = || {
        FaultPlan::default().then(
            SimDuration::from_secs(3),
            FaultKind::SilentBlackhole {
                device: f.spines[0],
            },
        )
    };
    let mut serial = fig7_emu(21, 1, true, mk_plan());
    let mut sharded = fig7_emu(21, 4, true, mk_plan());
    for emu in [&mut serial, &mut sharded] {
        emu.advance(SimDuration::from_secs(15));
    }
    let a = (serial.pull_health().to_json(), serial.incidents_jsonl());
    let b = (sharded.pull_health().to_json(), sharded.incidents_jsonl());
    assert!(!a.1.is_empty(), "the scenario must produce incidents");
    assert_eq!(a, b, "health exports must not depend on the worker count");

    // `profiling(true)` observes; it must not perturb the health plane.
    let fx = fig7();
    let prep = prepare(
        &fx.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    let mut profiled = mockup(
        Arc::new(prep),
        MockupOptions::builder()
            .seed(21)
            .workers(1)
            .fault_plan(mk_plan())
            .health_config(probe_cfg())
            .profiling(true)
            .build(),
    );
    profiled.advance(SimDuration::from_secs(15));
    assert_eq!(
        a,
        (profiled.pull_health().to_json(), profiled.incidents_jsonl()),
        "profiling must not perturb health bytes"
    );
}

#[test]
fn incident_jsonl_schema_is_stable_and_written_as_an_artifact() {
    let f = fig7();
    let plan = FaultPlan::default().then(
        SimDuration::from_secs(3),
        FaultKind::SilentBlackhole {
            device: f.spines[0],
        },
    );
    let mut emu = fig7_emu(31, 2, true, plan);
    emu.advance(SimDuration::from_secs(15));
    let jsonl = emu.incidents_jsonl();
    assert!(!jsonl.is_empty());

    // Every line parses, carries the envelope keys, and lines of the
    // same incident kind share one deep structure (the schema the CI
    // smoke job validates).
    let mut by_kind: BTreeMap<String, Value> = BTreeMap::new();
    for line in jsonl.lines() {
        let mut v: Value = serde_json::from_str(line).expect("incident line parses");
        // The `cause` value is legitimately either null (no plausible
        // cause) or a {kind, at_ns, description} object; check it here
        // and normalize before the per-kind structure comparison.
        if let Value::Object(fields) = &mut v {
            let cause = fields
                .iter_mut()
                .find(|(k, _)| k == "cause")
                .expect("incident line has a cause field");
            match &cause.1 {
                Value::Null => {}
                Value::Object(c) => {
                    let keys: Vec<&str> = c.iter().map(|(k, _)| k.as_str()).collect();
                    assert_eq!(keys, ["kind", "at_ns", "description"], "{line}");
                }
                other => panic!("cause is neither null nor an object: {other:?}"),
            }
            cause.1 = Value::Null;
        }
        let Value::Object(fields) = &v else {
            panic!("incident line is not an object")
        };
        for key in [
            "at_ns", "kind", "src", "src_host", "dst", "dst_host", "seq", "cause",
        ] {
            assert!(
                fields.iter().any(|(k, _)| k == key),
                "incident line is missing {key:?}: {line}"
            );
        }
        let kind = fields
            .iter()
            .find(|(k, _)| k == "kind")
            .and_then(|(_, v)| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("kind is a string");
        match by_kind.get(&kind) {
            None => {
                by_kind.insert(kind, v);
            }
            Some(proto) => {
                assert_same_key_structure(&format!("incident kind {kind}"), proto, &v);
                assert_eq!(
                    json_deep_structure(proto),
                    json_deep_structure(&v),
                    "incident kind {kind}: deep structure diverged"
                );
            }
        }
    }

    // Drop the artifact where the CI health-smoke job picks it up.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(format!("{dir}/health_incidents.jsonl"), &jsonl).unwrap();
}

#[test]
fn disabled_health_plane_is_fully_passive() {
    let mut on = fig7_emu(41, 1, true, FaultPlan::default());
    let mut off = fig7_emu(41, 1, false, FaultPlan::default());
    on.advance(SimDuration::from_secs(10));
    off.advance(SimDuration::from_secs(10));

    // Probes never touch the control plane: FIBs identical on vs off.
    assert_fibs_equal(&on, &off, "probes must not perturb the FIBs");

    let report = off.pull_health();
    assert!(!report.enabled);
    assert_eq!(report.probes_sent, 0);
    assert!(report.pairs.is_empty());
    assert!(off.incidents().is_empty());
    assert!(off.incidents_jsonl().is_empty());

    // No health counters, no probe events, no incident records: the
    // run report and trace are exactly the pre-health-plane bytes.
    let run = off.pull_report();
    assert!(!run.counters.keys().any(|k| k.starts_with("health.")));
    assert!(!off.trace_jsonl().contains("\"incident\""));

    // And the off-run itself reproduces bit for bit.
    let mut off2 = fig7_emu(41, 1, false, FaultPlan::default());
    off2.advance(SimDuration::from_secs(10));
    assert_eq!(off.trace_jsonl(), off2.trace_jsonl());
    assert_eq!(off.pull_report().to_json(), off2.pull_report().to_json());
}

#[test]
fn invalid_health_and_trace_knobs_fail_eagerly() {
    let zero_period = MockupOptions::builder()
        .health(SimDuration::ZERO)
        .try_build();
    assert!(matches!(
        zero_period,
        Err(EmulationError::InvalidOption(ref what)) if what.contains("period")
    ));

    let zero_ttl = MockupOptions::builder()
        .health_config(ProbeConfig {
            ttl: 0,
            ..probe_cfg()
        })
        .try_build();
    assert!(matches!(
        zero_ttl,
        Err(EmulationError::InvalidOption(ref what)) if what.contains("ttl")
    ));

    let zero_cap = MockupOptions::builder().trace_capacity(0).try_build();
    assert!(matches!(
        zero_cap,
        Err(EmulationError::InvalidOption(ref what)) if what.contains("trace_capacity")
    ));

    // Valid knobs still build.
    assert!(MockupOptions::builder()
        .health(SimDuration::from_secs(1))
        .try_build()
        .is_ok());
}

#[test]
fn capped_sink_drops_deterministically_under_probe_load() {
    let f = fig7();
    let mk = |workers: usize| {
        let prep = prepare(
            &f.topo,
            &[],
            BoundaryMode::WholeNetwork,
            SpeakerSource::OriginatedOnly,
            &PlanOptions::default(),
        );
        let mut emu = mockup(
            Arc::new(prep),
            MockupOptions::builder()
                .seed(51)
                .workers(workers)
                .trace_capacity(500)
                .fault_plan(FaultPlan::default().then(
                    SimDuration::from_secs(3),
                    FaultKind::SilentBlackhole {
                        device: f.spines[0],
                    },
                ))
                .health_config(probe_cfg())
                .build(),
        );
        emu.advance(SimDuration::from_secs(15));
        emu
    };
    let serial = mk(1);
    let sharded = mk(4);

    let a = serial.trace_jsonl();
    assert_eq!(
        a,
        sharded.trace_jsonl(),
        "capped trace under probe load must not depend on the worker count"
    );
    assert_eq!(a.lines().count(), 500, "ring keeps exactly the cap");
    // The sink keeps the newest records: the late-run incident records
    // survive the cap.
    assert!(a.contains("\"incident\""), "incident records are retained");

    for emu in [&serial, &sharded] {
        let report = emu.pull_report();
        let dropped = report.counters["telemetry.trace_dropped"];
        assert!(dropped > 0, "a 500-record cap must drop on this load");
        assert_eq!(report.counters["telemetry.trace_retained"], 500);
        assert_eq!(
            report.counters["telemetry.trace_emitted"],
            500 + dropped,
            "emitted = retained + dropped"
        );
    }
    assert_eq!(
        serial.pull_report().counters["telemetry.trace_dropped"],
        sharded.pull_report().counters["telemetry.trace_dropped"],
        "drop counts are deterministic across worker counts"
    );
}

#[test]
fn a_forks_rehearsed_change_reports_its_own_slo_impact() {
    let f = fig7();
    let mut emu = fig7_emu(61, 1, true, FaultPlan::default());
    emu.advance(SimDuration::from_secs(5));
    let parent_health = emu.pull_health().to_json();

    // Rehearse a drain on a fork: take down a ToR uplink.
    let (lid, _, _) = f.topo.neighbors(f.tors[0]).next().unwrap();
    let mut fork = emu.fork();
    let delta = fork
        .apply(&ChangeSet::new().link_down(lid))
        .expect("drain applies on the fork");

    // The delta carries the change's own SLO impact (probes launched
    // while it converged) and renders it in the operator summary.
    assert!(
        delta.probes_sent > 0,
        "probes must run during the transient (delta: {delta:?})"
    );
    assert!(
        delta.summary().contains("SLO impact"),
        "{}",
        delta.summary()
    );

    // COW isolation: the parent's gauges and timeline are untouched.
    assert_eq!(
        emu.pull_health().to_json(),
        parent_health,
        "a fork's rehearsal must not leak into the parent's health plane"
    );
}
