//! Deterministic fault injection and failure recovery.
//!
//! "PhyNet's health monitoring service detects failures of VMs ... and
//! recovers them automatically" — this module is that subsystem for the
//! emulated orchestrator. A [`FaultPlan`] is a seed-reproducible timeline
//! of infrastructure faults (VM crashes, slow restarts, speaker-agent
//! crashes, link-flap bursts, delayed heartbeats) injected between event-
//! queue drains of the running [`Emulation`]. The health monitor reacts
//! with fixed-interval heartbeat accounting, bounded exponential reboot
//! retries, and — when retries are exhausted — graceful degradation:
//! the dead VM's sandboxes are quarantined onto a spare VM (picked by
//! topology-adjacency affinity, or freshly provisioned) and replayed
//! through boot + config load while untouched shards keep converging.
//!
//! Every step emits a structured [`JournalKind`] entry, so tests and
//! benches can assert recovery latency and that post-recovery FIBs are
//! bit-identical to a fault-free run without scraping logs.

use crate::emulation::{Emulation, EmulationError, Sandbox};
use crate::metrics::JournalKind;
use crate::plan::sandbox_kind;
use crystalnet_net::{best_spare, DeviceId, LinkId};
use crystalnet_routing::ControlPlaneSim;
use crystalnet_sim::{Backoff, HeartbeatSchedule, SimDuration, SimRng, SimTime};
use crystalnet_vnet::{ContainerEngine, ContainerKind, LinkSpan, VirtualLink, VmSku};

/// One kind of infrastructure fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A VM dies and its first reboot attempt succeeds.
    VmCrash {
        /// VM index in the fleet.
        vm: usize,
    },
    /// A VM dies and the first `failed_attempts` reboot attempts fail.
    /// If that exhausts the retry budget, the VM is quarantined and its
    /// sandboxes re-placed on a spare.
    VmSlowRestart {
        /// VM index in the fleet.
        vm: usize,
        /// Reboot attempts that fail before one succeeds.
        failed_attempts: u32,
    },
    /// A speaker agent crashes; the monitor restarts it with a fresh
    /// incarnation epoch on the next heartbeat tick.
    SpeakerCrash {
        /// The speaker device.
        device: DeviceId,
    },
    /// A link flaps down/up `flaps` times, one transition per `period`.
    LinkFlapBurst {
        /// The production link.
        link: LinkId,
        /// Down/up cycles.
        flaps: u32,
        /// Time between transitions.
        period: SimDuration,
    },
    /// A healthy VM's heartbeats are delayed (stalled reporter, not a
    /// dead VM). At or above the miss threshold the monitor cannot tell
    /// the difference and power-cycles the healthy VM.
    DelayedHeartbeat {
        /// VM index in the fleet.
        vm: usize,
        /// Consecutive heartbeats that go missing.
        misses: u32,
    },
    /// A device's dataplane silently stops forwarding while its control
    /// plane keeps running: BGP sessions stay up, the FIB stays
    /// "correct", heartbeats keep flowing — the gray failure that final
    /// state checks cannot see. Persistent until
    /// [`crate::Emulation::set_forwarding`] restores it. Only the
    /// health plane's probes observe it.
    SilentBlackhole {
        /// The device whose forwarding dies.
        device: DeviceId,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultKind::VmCrash { vm } => write!(f, "vm {vm} crash"),
            FaultKind::VmSlowRestart {
                vm,
                failed_attempts,
            } => {
                write!(f, "vm {vm} slow restart ({failed_attempts} failed reboots)")
            }
            FaultKind::SpeakerCrash { device } => write!(f, "speaker #{} crash", device.0),
            FaultKind::LinkFlapBurst {
                link,
                flaps,
                period,
            } => write!(
                f,
                "link #{} flap burst ({flaps}x every {period:?})",
                link.0 //
            ),
            FaultKind::DelayedHeartbeat { vm, misses } => {
                write!(f, "vm {vm} heartbeat delayed ({misses} misses)")
            }
            FaultKind::SilentBlackhole { device } => {
                write!(f, "device #{} silent blackhole", device.0)
            }
        }
    }
}

/// A fault scheduled at an offset from the plan's start instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from the instant the plan starts executing.
    pub after: SimDuration,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic timeline of faults.
///
/// Build one explicitly with [`FaultPlan::then`], or derive one from a
/// seed with [`FaultPlan::generate`] — the same seed always yields the
/// same plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults (executed in `after` order).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Appends a fault `after` the plan start; builder-style.
    #[must_use]
    pub fn then(mut self, after: SimDuration, kind: FaultKind) -> Self {
        self.push(after, kind);
        self
    }

    /// Appends a fault `after` the plan start.
    pub fn push(&mut self, after: SimDuration, kind: FaultKind) {
        self.events.push(FaultEvent { after, kind });
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Derives a plan of up to `events` faults from `seed`, spread over
    /// `horizon`, drawing targets from the given fleet/link/speaker
    /// populations. Fault kinds whose population is empty are skipped,
    /// so the plan may come out shorter than `events`.
    #[must_use]
    pub fn generate(
        seed: u64,
        horizon: SimDuration,
        vm_count: usize,
        links: &[LinkId],
        speakers: &[DeviceId],
        events: usize,
    ) -> FaultPlan {
        let mut rng = SimRng::for_component(seed, "fault-plan");
        let mut plan = FaultPlan::default();
        for _ in 0..events {
            let after = SimDuration::from_nanos(rng.below(horizon.as_nanos().max(1)));
            let kind = match rng.below(5) {
                0 if vm_count > 0 => FaultKind::VmCrash {
                    vm: rng.below(vm_count as u64) as usize,
                },
                1 if vm_count > 0 => FaultKind::VmSlowRestart {
                    vm: rng.below(vm_count as u64) as usize,
                    failed_attempts: 1 + rng.below(2) as u32,
                },
                2 if !speakers.is_empty() => FaultKind::SpeakerCrash {
                    device: *rng.pick(speakers).expect("non-empty"),
                },
                3 if !links.is_empty() => FaultKind::LinkFlapBurst {
                    link: *rng.pick(links).expect("non-empty"),
                    flaps: 1 + rng.below(3) as u32,
                    period: SimDuration::from_secs(1 + rng.below(5)),
                },
                4 if vm_count > 0 => FaultKind::DelayedHeartbeat {
                    vm: rng.below(vm_count as u64) as usize,
                    misses: 1 + rng.below(3) as u32,
                },
                _ => continue,
            };
            plan.events.push(FaultEvent { after, kind });
        }
        plan.events.sort_by_key(|e| e.after);
        plan
    }
}

/// Bounded reboot-retry policy: exponential backoff from `base`, capped
/// at `cap`, giving up after `max_attempts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First retry delay.
    pub base: SimDuration,
    /// Delay ceiling.
    pub cap: SimDuration,
    /// Attempts before quarantine.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_secs(2),
            cap: SimDuration::from_secs(30),
            max_attempts: 4,
        }
    }
}

impl RetryPolicy {
    /// A fresh backoff iterator under this policy.
    #[must_use]
    pub fn backoff(&self) -> Backoff {
        Backoff::new(self.base, self.cap, self.max_attempts)
    }
}

/// Health-monitor policy: how VM liveness is watched and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Expected heartbeat interval.
    pub heartbeat: SimDuration,
    /// Consecutive misses before a VM is declared dead.
    pub miss_threshold: u32,
    /// Reboot-retry policy once declared dead.
    pub retry: RetryPolicy,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            heartbeat: SimDuration::from_secs(10),
            miss_threshold: 3,
            retry: RetryPolicy::default(),
        }
    }
}

/// Summary of one [`Emulation::run_fault_plan`] execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults injected.
    pub injected: usize,
    /// Recoveries completed during this plan.
    pub recoveries: usize,
    /// When the network re-converged after the last fault.
    pub settled_at: SimTime,
}

impl Emulation {
    /// Executes a fault plan against the running emulation: the sim is
    /// driven to each fault's instant (untouched devices keep converging
    /// in virtual time), the fault is applied, the health monitor's
    /// detection/retry/quarantine reaction is played out, and finally the
    /// network is settled back to quiescence.
    ///
    /// # Errors
    ///
    /// Validation happens before anything is injected:
    /// [`EmulationError::UnknownVm`] / [`EmulationError::UnknownDevice`] /
    /// [`EmulationError::UnknownLink`] for out-of-range targets, and
    /// [`EmulationError::NotConverged`] if the network fails to settle
    /// after the plan.
    pub fn run_fault_plan(&mut self, plan: &FaultPlan) -> Result<FaultReport, EmulationError> {
        for ev in &plan.events {
            match ev.kind {
                FaultKind::VmCrash { vm }
                | FaultKind::VmSlowRestart { vm, .. }
                | FaultKind::DelayedHeartbeat { vm, .. } => {
                    if vm >= self.vm_ids.len() {
                        return Err(EmulationError::UnknownVm(vm));
                    }
                }
                FaultKind::SpeakerCrash { device } => {
                    if !self
                        .prep
                        .speaker_plan
                        .scripts
                        .iter()
                        .any(|(d, _)| *d == device)
                    {
                        return Err(EmulationError::UnknownDevice(format!(
                            "speaker#{}",
                            device.0
                        )));
                    }
                }
                FaultKind::LinkFlapBurst { link, .. } => {
                    if !self.vlinks.iter().any(|vl| vl.link == link) {
                        return Err(EmulationError::UnknownLink(link.0));
                    }
                }
                FaultKind::SilentBlackhole { device } => {
                    if !self.sandboxes.contains_key(&device) {
                        return Err(EmulationError::UnknownDevice(format!(
                            "device#{}",
                            device.0
                        )));
                    }
                }
            }
        }

        let start = self.now();
        let recoveries_before = self.journal.recoveries().len();
        let mut events = plan.events.clone();
        // Stable sort: same-offset faults keep their plan order.
        events.sort_by_key(|e| e.after);
        for ev in &events {
            // Drain the queue up to the fault instant, so the fault lands
            // amid whatever convergence activity is in flight.
            self.sim.run_until(start + ev.after);
            let t = self.now();
            self.apply_fault(t, &ev.kind);
        }
        let settled_at = self.settle()?;
        Ok(FaultReport {
            injected: events.len(),
            recoveries: self.journal.recoveries().len() - recoveries_before,
            settled_at,
        })
    }

    fn apply_fault(&mut self, t: SimTime, kind: &FaultKind) {
        self.journal_event(
            t,
            JournalKind::FaultInjected {
                fault: kind.to_string(),
            },
        );
        match *kind {
            FaultKind::VmCrash { vm } => self.vm_fault(t, vm, 0),
            FaultKind::VmSlowRestart {
                vm,
                failed_attempts,
            } => self.vm_fault(t, vm, failed_attempts),
            FaultKind::SpeakerCrash { device } => self.speaker_fault(t, device),
            FaultKind::LinkFlapBurst {
                link,
                flaps,
                period,
            } => {
                let ep = ControlPlaneSim::link_endpoints(&self.topo, link);
                for i in 0..u64::from(flaps) {
                    let down_at = t + period * (2 * i);
                    let up_at = t + period * (2 * i + 1);
                    self.sim.link_down(ep, down_at);
                    self.journal_event(
                        down_at,
                        JournalKind::LinkFlap {
                            link: link.0,
                            up: false,
                        },
                    );
                    self.sim.link_up(ep, up_at);
                    self.journal_event(
                        up_at,
                        JournalKind::LinkFlap {
                            link: link.0,
                            up: true,
                        },
                    );
                }
            }
            FaultKind::SilentBlackhole { device } => {
                // No session reset, no heartbeat miss, no journal beyond
                // the injection record above: the whole point is that
                // nothing but a live probe notices.
                self.sim.set_forwarding(device, false);
            }
            FaultKind::DelayedHeartbeat { vm, misses } => {
                let detected = self.journal_misses(t, vm, misses);
                if misses >= self.options.health.miss_threshold && !self.vm_down[vm] {
                    // The monitor cannot tell a stalled reporter from a
                    // dead VM: past the threshold it declares death and
                    // power-cycles a VM that was actually healthy.
                    self.journal_event(detected, JournalKind::VmDeclaredDead { vm });
                    let victims = self.crash_vm_devices(vm, detected);
                    self.retry_and_restore(t, detected, vm, 0, &victims);
                }
            }
        }
    }

    /// A VM dies at `t`; the monitor detects it via missed heartbeats and
    /// retries reboots, the first `failed_attempts` of which fail.
    fn vm_fault(&mut self, t: SimTime, vm: usize, failed_attempts: u32) {
        if self.vm_down[vm] {
            // Already dead (e.g. quarantined earlier in the plan): the
            // injection is journaled above but there is nothing to kill.
            return;
        }
        let victims = self.crash_vm_devices(vm, t);
        let detected = self.journal_misses(t, vm, self.options.health.miss_threshold);
        self.journal_event(detected, JournalKind::VmDeclaredDead { vm });
        self.retry_and_restore(t, detected, vm, failed_attempts, &victims);
    }

    /// Journals `misses` consecutive heartbeat misses for `vm` starting
    /// from the first tick after `t`; returns the last miss instant.
    fn journal_misses(&mut self, t: SimTime, vm: usize, misses: u32) -> SimTime {
        let hb = HeartbeatSchedule::new(SimTime::ZERO, self.options.health.heartbeat);
        let mut tick = hb.next_after(t);
        for m in 1..=misses.max(1) {
            self.journal_event(tick, JournalKind::HeartbeatMissed { vm, consecutive: m });
            if m < misses {
                tick = hb.next_after(tick);
            }
        }
        tick
    }

    /// Plays the bounded-backoff reboot loop for a dead VM. The first
    /// `failed_attempts` attempts fail; a later attempt restores the VM.
    /// If the budget is exhausted first, the VM is quarantined and its
    /// sandboxes re-placed on a spare.
    fn retry_and_restore(
        &mut self,
        fault_at: SimTime,
        detected_at: SimTime,
        vm: usize,
        failed_attempts: u32,
        victims: &[DeviceId],
    ) {
        let vm_id = self.vm_ids[vm];
        let mut backoff = self.options.health.retry.backoff();
        let mut when = detected_at;
        loop {
            let Some(delay) = backoff.next_delay() else {
                self.quarantine_to_spare(fault_at, when, vm, victims);
                return;
            };
            when += delay;
            let attempt = backoff.attempts();
            self.journal_event(
                when,
                JournalKind::RebootAttempt {
                    vm,
                    attempt,
                    backoff: delay,
                },
            );
            if attempt <= failed_attempts {
                continue; // this reboot attempt fails
            }
            let reboot_done = {
                let mut cloud = self.cloud.lock().expect("cloud lock poisoned");
                let done = cloud.reboot(vm_id, when);
                cloud.mark_running(vm_id, done);
                cloud.reset_cpu(vm_id, done);
                done
            };
            let restored_at = reboot_done + self.vm_recovery_cost(victims);
            self.restore_devices(victims, restored_at);
            self.vm_down[vm] = false;
            self.journal_event(
                restored_at,
                JournalKind::RecoveryComplete {
                    vm,
                    latency: restored_at.since(fault_at),
                    devices: victims.len(),
                },
            );
            return;
        }
    }

    /// Graceful degradation: the dead VM is abandoned and its sandboxes
    /// re-placed on a spare VM — the running VM with enough free RAM and
    /// the most production links into the displaced set (so as many
    /// re-placed links as possible become intra-VM), or a freshly
    /// provisioned VM when no candidate fits. Containers are re-created,
    /// links re-provisioned (spans re-derived), and the devices replay
    /// boot + config load while untouched shards keep converging.
    fn quarantine_to_spare(
        &mut self,
        fault_at: SimTime,
        when: SimTime,
        dead_vm: usize,
        victims: &[DeviceId],
    ) {
        let needed: u32 = victims
            .iter()
            .map(|&dev| self.victim_kind(dev).ram_mb() + ContainerKind::PhyNet.ram_mb())
            .sum();

        // Candidate spares: running VMs with room, ranked by adjacency.
        let mut cand_idx = Vec::new();
        {
            let cloud = self.cloud.lock().expect("cloud lock poisoned");
            for idx in 0..self.vm_ids.len() {
                if idx == dead_vm || self.vm_down[idx] {
                    continue;
                }
                if cloud.vm(self.vm_ids[idx]).ram_free_mb() >= needed {
                    cand_idx.push(idx);
                }
            }
        }
        let cand_devs: Vec<Vec<DeviceId>> = cand_idx
            .iter()
            .map(|&idx| {
                let mut devs: Vec<DeviceId> = self
                    .sandboxes
                    .iter()
                    .filter(|(_, sb)| sb.vm == idx)
                    .map(|(&d, _)| d)
                    .collect();
                devs.sort_unstable_by_key(|d| d.0);
                devs
            })
            .collect();
        let cand_refs: Vec<&[DeviceId]> = cand_devs.iter().map(Vec::as_slice).collect();

        let (spare, setup_from) = match best_spare(&self.topo, victims, &cand_refs) {
            Some(i) => (cand_idx[i], when),
            None => {
                // No running VM has room: provision a fresh spare.
                let (id, ready) = {
                    let mut cloud = self.cloud.lock().expect("cloud lock poisoned");
                    let (id, ready) = cloud.provision(VmSku::standard_4c8g(), when);
                    cloud.mark_running(id, ready);
                    (id, ready)
                };
                self.vm_ids.push(id);
                self.engines.push(ContainerEngine::new());
                self.vm_down.push(false);
                self.mgmt.attach_vm(id);
                (self.vm_ids.len() - 1, ready)
            }
        };
        self.journal_event(when, JournalKind::VmQuarantined { vm: dead_vm, spare });

        // Rebuild the sandboxes on the spare.
        let spare_id = self.vm_ids[spare];
        for &dev in victims {
            let iface_count = self.topo.device(dev).ifaces.len() as u32;
            let kind = self.victim_kind(dev);
            let engine = &mut self.engines[spare];
            let phynet = engine.create(ContainerKind::PhyNet, None);
            let sandbox = engine.create(kind, Some(phynet));
            engine.add_ifaces(phynet, iface_count);
            engine.start(phynet);
            engine.start(sandbox);
            {
                let mut cloud = self.cloud.lock().expect("cloud lock poisoned");
                let vm = cloud.vm_mut(spare_id);
                vm.cpu.submit(setup_from, ContainerKind::PhyNet.start_cpu());
                for _ in 0..iface_count {
                    vm.cpu.submit(setup_from, self.options.bridge.setup_cpu());
                }
                vm.ram_used_mb += kind.ram_mb() + ContainerKind::PhyNet.ram_mb();
            }
            self.sandboxes.insert(
                dev,
                Sandbox {
                    vm: spare,
                    phynet,
                    device: sandbox,
                },
            );
            if let Some(model) = self.work_model() {
                model.rehome_device(dev, spare_id);
            }
        }

        // Re-provision the victims' links: endpoints moved VMs, so spans
        // (and VXLAN tunnels) must be re-derived.
        let touched: Vec<(LinkId, DeviceId, DeviceId)> = self
            .topo
            .links()
            .filter(|(_, l)| victims.contains(&l.a.device) || victims.contains(&l.b.device))
            .map(|(lid, l)| (lid, l.a.device, l.b.device))
            .collect();
        for (lid, a, b) in touched {
            let (Some(sa), Some(sb)) = (self.sandboxes.get(&a), self.sandboxes.get(&b)) else {
                continue; // one end outside the emulation
            };
            let (vm_a, vm_b) = (self.vm_ids[sa.vm], self.vm_ids[sb.vm]);
            let vl = VirtualLink::provision(lid, vm_a, vm_b, false, &mut self.vnis);
            let span = vl.span;
            if span != LinkSpan::IntraVm {
                let mut cloud = self.cloud.lock().expect("cloud lock poisoned");
                cloud
                    .vm_mut(vm_a)
                    .cpu
                    .submit(setup_from, self.options.bridge.setup_cpu());
                cloud
                    .vm_mut(vm_b)
                    .cpu
                    .submit(setup_from, self.options.bridge.setup_cpu());
            }
            if let Some(slot) = self.vlinks.iter_mut().find(|v| v.link == lid) {
                *slot = vl;
            } else {
                self.vlinks.push(vl);
            }
            if let Some(model) = self.work_model() {
                model.set_link_span(lid, span);
            }
        }

        let restored_at = setup_from + self.vm_recovery_cost(victims);
        self.restore_devices(victims, restored_at);
        self.journal_event(
            restored_at,
            JournalKind::RecoveryComplete {
                vm: spare,
                latency: restored_at.since(fault_at),
                devices: victims.len(),
            },
        );
    }

    /// The container kind a displaced device needs on its new VM.
    fn victim_kind(&self, dev: DeviceId) -> ContainerKind {
        if self
            .prep
            .speaker_plan
            .scripts
            .iter()
            .any(|(d, _)| *d == dev)
        {
            ContainerKind::Speaker
        } else {
            sandbox_kind(self.topo.device(dev).vendor)
        }
    }

    /// A speaker agent crashes at `t`: its links drop, the monitor
    /// notices on the next heartbeat tick and restarts the agent with a
    /// bumped incarnation epoch, forcing peers to flush and resync.
    fn speaker_fault(&mut self, t: SimTime, device: DeviceId) {
        self.sim.power_off(device);
        for (lid, _, _) in self.topo.neighbors(device).collect::<Vec<_>>() {
            let ep = ControlPlaneSim::link_endpoints(&self.topo, lid);
            self.sim.link_down(ep, t);
        }
        let hb = HeartbeatSchedule::new(SimTime::ZERO, self.options.health.heartbeat);
        // Agent restart is cheap: no namespace rebuild, just the process.
        let restored_at = hb.next_after(t) + SimDuration::from_secs(3);
        self.restore_devices(&[device], restored_at);
        let vm = self.sandboxes[&device].vm;
        self.journal_event(
            restored_at,
            JournalKind::RecoveryComplete {
                vm,
                latency: restored_at.since(t),
                devices: 1,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_are_seed_deterministic_and_time_sorted() {
        let links = [LinkId(0), LinkId(3), LinkId(7)];
        let speakers = [DeviceId(40), DeviceId(41)];
        let a = FaultPlan::generate(9, SimDuration::from_mins(30), 4, &links, &speakers, 12);
        let b = FaultPlan::generate(9, SimDuration::from_mins(30), 4, &links, &speakers, 12);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty());
        assert!(a.events.windows(2).all(|w| w[0].after <= w[1].after));
        let c = FaultPlan::generate(10, SimDuration::from_mins(30), 4, &links, &speakers, 12);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn generate_skips_kinds_with_empty_populations() {
        // No links, no speakers: only VM faults can be drawn.
        let plan = FaultPlan::generate(3, SimDuration::from_mins(10), 2, &[], &[], 20);
        for ev in &plan.events {
            match ev.kind {
                FaultKind::VmCrash { vm }
                | FaultKind::VmSlowRestart { vm, .. }
                | FaultKind::DelayedHeartbeat { vm, .. } => assert!(vm < 2),
                other => panic!("drew {other:?} from an empty population"),
            }
        }
    }

    #[test]
    fn retry_policy_backoff_matches_policy_fields() {
        let policy = RetryPolicy {
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(4),
            max_attempts: 3,
        };
        let mut b = policy.backoff();
        assert_eq!(b.next_delay(), Some(SimDuration::from_secs(1)));
        assert_eq!(b.next_delay(), Some(SimDuration::from_secs(2)));
        assert_eq!(b.next_delay(), Some(SimDuration::from_secs(4)));
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn plan_builder_keeps_push_order_until_executed() {
        let plan = FaultPlan::default()
            .then(SimDuration::from_secs(30), FaultKind::VmCrash { vm: 1 })
            .then(
                SimDuration::from_secs(10),
                FaultKind::DelayedHeartbeat { vm: 0, misses: 1 },
            );
        assert_eq!(plan.len(), 2);
        // The builder records in call order; run_fault_plan sorts.
        assert_eq!(plan.events[0].after, SimDuration::from_secs(30));
    }
}
