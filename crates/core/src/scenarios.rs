//! The Table 1 incident suite: executable reproductions of the root-cause
//! classes behind the paper's O(100) production incidents (2015–2017),
//! each run under the emulator with a detection check.
//!
//! | Root cause | Proportion | Scenarios here |
//! |---|---|---|
//! | Software bugs | 36% | tool device-shutdown, stop-announcing firmware, Figure 1 aggregation imbalance, FIB-overflow blackhole, ACL v1/v2 misread |
//! | Config bugs | 27% | route-map leak, wrong remote-AS, overlapping IP |
//! | Human errors | 6% | the `deny 10.0.0.0/2` typo |
//! | Hardware failures | 29% | fiber cut (covered), silent ASIC drop (honestly *not* covered — §9's stated limitation) |
//!
//! Each scenario reports whether the emulation *detected* the issue and
//! whether configuration-level verification (Batfish-class tools) could
//! have — the paper's core comparison.

use crate::emulation::{mockup, Emulation, MockupOptions};
use crate::plan::PlanOptions;
use crate::prepare::{prepare, BoundaryMode, SpeakerSource};
use crystalnet_config::{Acl, AclEntry, Action, AggregateConfig};
use crystalnet_dataplane::ForwardDecision;
use crystalnet_net::fixtures::{fig1, fig7};
use crystalnet_net::{Asn, Device, Ipv4Prefix, P2pAllocator, Role, Topology, Vendor};
use crystalnet_routing::{MgmtCommand, MgmtResponse, VendorProfile};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Root-cause classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RootCause {
    /// Bugs in device firmware or management tools.
    SoftwareBug,
    /// Configuration errors.
    ConfigBug,
    /// Manual actions mismatching intent.
    HumanError,
    /// Hardware failures.
    HardwareFailure,
}

impl RootCause {
    /// Table 1's proportion for the class.
    #[must_use]
    pub fn paper_proportion(self) -> f64 {
        match self {
            RootCause::SoftwareBug => 0.36,
            RootCause::ConfigBug => 0.27,
            RootCause::HumanError => 0.06,
            RootCause::HardwareFailure => 0.29,
        }
    }
}

/// The outcome of one incident scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Root-cause class.
    pub cause: RootCause,
    /// Whether the emulation surfaced the issue.
    pub detected: bool,
    /// Whether config-level verification could have caught it
    /// (the "Verification Coverage" column).
    pub verification_covers: bool,
    /// What was observed.
    pub detail: String,
}

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

fn emulate(topo: &Topology, options: MockupOptions) -> Emulation {
    let prep = prepare(
        topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    mockup(Arc::new(prep), options)
}

/// Runs every scenario with the given seed.
#[must_use]
pub fn run_all(seed: u64) -> Vec<ScenarioResult> {
    vec![
        tool_shutdown_bug(seed),
        firmware_stops_announcing(seed),
        aggregation_imbalance(seed),
        fib_overflow_blackhole(seed),
        acl_format_change(seed),
        config_route_leak(seed),
        config_wrong_remote_as(seed),
        config_overlapping_prefix(seed),
        human_error_acl_typo(seed),
        hardware_fiber_cut(seed),
        hardware_silent_drop(seed),
    ]
}

/// §2: "an unhandled exception ... caused a tool to shut down a router
/// instead of a single BGP session."
#[must_use]
pub fn tool_shutdown_bug(seed: u64) -> ScenarioResult {
    let f = fig7();
    let mut emu = emulate(&f.topo, MockupOptions::builder().seed(seed).build());
    // The buggy automation tool runs against the emulated L1.
    let l1 = f.leaves[0];
    let name = f.topo.device(l1).name.clone();
    let _ = emu.login_and_run(&name, MgmtCommand::DeviceShutdown);
    let _ = emu.settle();
    // Practicing in the emulator reveals the whole device went dark, not
    // one session.
    let detected = !emu.sim.is_up(l1);
    ScenarioResult {
        name: "tool shuts down router instead of one BGP session".into(),
        cause: RootCause::SoftwareBug,
        detected,
        verification_covers: false,
        detail: format!("device {name} down after intended single-session change"),
    }
}

/// §2: "new router firmware from a vendor erroneously stopped announcing
/// certain IP prefixes."
#[must_use]
pub fn firmware_stops_announcing(seed: u64) -> ScenarioResult {
    let f = fig7();
    // Upgrade T1 to the buggy firmware build.
    let mut profile = VendorProfile::ctnr_a();
    profile.quirks.stop_announcing_networks = true;
    let options = MockupOptions::builder()
        .seed(seed)
        .profile_override(f.tors[0], profile)
        .build();
    let emu = emulate(&f.topo, options);
    // The spine should know T1's subnet; with the buggy image it doesn't.
    let missing = emu
        .sim
        .fib(f.spines[0])
        .is_some_and(|fib| fib.lookup(p("10.7.0.0/24").nth(1)).is_none());
    ScenarioResult {
        name: "firmware upgrade stops announcing prefixes".into(),
        cause: RootCause::SoftwareBug,
        detected: missing,
        verification_covers: false,
        detail: "spine lost the upgraded ToR's server subnet".into(),
    }
}

/// Figure 1: vendor-divergent aggregate AS paths pull all traffic to one
/// device.
#[must_use]
pub fn aggregation_imbalance(seed: u64) -> ScenarioResult {
    let f = fig1();
    let mut prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    // Both aggregation routers get `aggregate-address P3 summary-only`.
    for (dev, cfg) in &mut prep.configs {
        if *dev == f.routers[5] || *dev == f.routers[6] {
            cfg.bgp.as_mut().unwrap().aggregates.push(AggregateConfig {
                prefix: f.p3,
                summary_only: true,
            });
        }
    }
    let mut emu = mockup(Arc::new(prep), MockupOptions::builder().seed(seed).build());

    // Telemetry: 64 flows from R8 toward P3; count which middle router
    // carries them.
    let (mut via_r6, mut via_r7) = (0u32, 0u32);
    for flow in 0..64u32 {
        let src = crystalnet_net::Ipv4Addr::new(203, 0, 113, flow as u8);
        let dst = f.p3.nth(256 + flow);
        let sig = emu.inject_packet(f.routers[7], src, dst);
        let (path, _) = emu.pull_packets(sig).expect("probe traced");
        if path.contains(&f.routers[5]) {
            via_r6 += 1;
        }
        if path.contains(&f.routers[6]) {
            via_r7 += 1;
        }
    }
    let detected = via_r7 == 64 && via_r6 == 0;
    ScenarioResult {
        name: "vendor-divergent IP aggregation imbalances traffic (Fig. 1)".into(),
        cause: RootCause::SoftwareBug,
        detected,
        verification_covers: false,
        detail: format!("R8→P3 flows: {via_r6} via R6, {via_r7} via R7"),
    }
}

/// §2: a software load balancer splits its /16 into /24 blocks; the
/// downstream router's FIB overflows and silently blackholes.
#[must_use]
pub fn fib_overflow_blackhole(seed: u64) -> ScenarioResult {
    // Two-node fixture: SLB announcing 100 blocks into a small-FIB router.
    let mut topo = Topology::new();
    let mut p2p = P2pAllocator::new(p("100.105.0.0/24"));
    let slb = topo
        .add_device(Device {
            name: "slb0".into(),
            role: Role::Middlebox,
            vendor: Vendor::CtnrB,
            asn: Asn(65501),
            loopback: "172.41.0.1".parse().unwrap(),
            mgmt_addr: "192.168.41.1".parse().unwrap(),
            originated: p("10.1.0.0/16").subnets(24).into_iter().take(100).collect(),
            ifaces: vec![],
            pod: None,
        })
        .unwrap();
    let router = topo
        .add_device(Device {
            name: "agg0".into(),
            role: Role::Leaf,
            vendor: Vendor::CtnrA,
            asn: Asn(65502),
            loopback: "172.41.0.2".parse().unwrap(),
            mgmt_addr: "192.168.41.2".parse().unwrap(),
            originated: vec![],
            ifaces: vec![],
            pod: None,
        })
        .unwrap();
    topo.connect_p2p(slb, router, &mut p2p).unwrap();

    let mut prep = prepare(
        &topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    for (dev, cfg) in &mut prep.configs {
        if *dev == router {
            cfg.fib_capacity = Some(60);
        }
    }
    let mut emu = mockup(Arc::new(prep), MockupOptions::builder().seed(seed).build());

    // Probe every announced block from the router.
    let mut blackholed = 0;
    for block in p("10.1.0.0/16").subnets(24).into_iter().take(100) {
        let sig = emu.inject_packet(router, "172.41.0.2".parse().unwrap(), block.nth(10));
        if emu
            .pull_packets(sig)
            .is_ok_and(|(_, o)| o == ForwardDecision::DropNoRoute)
        {
            blackholed += 1;
        }
    }
    ScenarioResult {
        name: "FIB overflow silently blackholes load-balancer blocks".into(),
        cause: RootCause::SoftwareBug,
        detected: blackholed == 40,
        verification_covers: false,
        detail: format!("{blackholed}/100 blocks blackholed at the small-FIB router"),
    }
}

/// §2: "a vendor changed the format of ACLs in the new release, but
/// neglected to document the change clearly."
#[must_use]
pub fn acl_format_change(seed: u64) -> ScenarioResult {
    let f = fig7();
    // L1 runs the new firmware that misreads v1 ACL field order.
    let mut profile = VendorProfile::ctnr_a();
    profile.quirks.acl_v2_misread = true;
    let options = MockupOptions::builder()
        .seed(seed)
        .profile_override(f.leaves[0], profile)
        .build();
    let mut emu = emulate(&f.topo, options);

    // Operators push the same v1 ACL they always use: permit traffic
    // *from* server space.
    let acl = Acl {
        entries: vec![AclEntry {
            seq: 10,
            action: Action::Permit,
            src: p("10.0.0.0/8"),
            dst: p("0.0.0.0/0"),
        }],
    };
    let l1 = f.leaves[0];
    // The ACL guards L1's interface toward T1 (iface 0 = "et0").
    emu.sim.mgmt_sync(
        l1,
        MgmtCommand::ApplyAclIn {
            iface: "et0".into(),
            acl_name: "SRV-IN".into(),
            acl,
        },
    );
    let _ = emu.settle();

    // Legitimate server-sourced packets from T1 toward a non-10/8
    // destination (T3's loopback) should pass under the v1 reading — the
    // misreading firmware swaps source and destination fields, so the
    // destination no longer matches the permit and the implicit deny
    // fires. (Flows whose src *and* dst are both in 10/8 mask the bug —
    // exactly why it escaped the vendor's unit tests.)
    let t3_loopback = f.topo.device(f.tors[2]).loopback;
    let mut dropped_at_l1 = false;
    for flow in 0..16u32 {
        let sig = emu.inject_packet(f.tors[0], p("10.7.0.0/24").nth(flow + 7), t3_loopback);
        let (path, outcome) = emu.pull_packets(sig).expect("probe traced");
        if outcome == ForwardDecision::DropAcl && path.last() == Some(&l1) {
            dropped_at_l1 = true;
        }
    }
    ScenarioResult {
        name: "undocumented ACL format change breaks old configs".into(),
        cause: RootCause::SoftwareBug,
        detected: dropped_at_l1,
        verification_covers: false,
        detail: "v1 ACL permits server sources; v2-misreading firmware drops them".into(),
    }
}

/// §2 config bugs: a filtering change that leaks — an outbound route map
/// intended to filter one prefix denies everything (implicit deny).
#[must_use]
pub fn config_route_leak(seed: u64) -> ScenarioResult {
    let f = fig7();
    let mut emu = emulate(&f.topo, MockupOptions::builder().seed(seed).build());
    let t1 = f.tors[0];
    // The operator attaches a route map referencing a prefix list that
    // matches nothing (a classic fat-fingered prefix-list name/content
    // mismatch): the implicit deny filters *all* announcements.
    let mut cfg = emu
        .prep
        .configs
        .iter()
        .find(|(d, _)| *d == t1)
        .unwrap()
        .1
        .clone();
    cfg.route_maps.insert(
        "OUT-FILTER".into(),
        crystalnet_config::RouteMap {
            entries: vec![crystalnet_config::RouteMapEntry {
                seq: 10,
                action: Action::Permit,
                matches: vec![crystalnet_config::RouteMatch::PrefixList("NO-SUCH".into())],
                sets: vec![],
            }],
        },
    );
    if let Some(bgp) = cfg.bgp.as_mut() {
        for n in &mut bgp.neighbors {
            n.route_map_out = Some("OUT-FILTER".into());
        }
    }
    emu.reload(t1, cfg, false);
    let _ = emu.settle();
    let missing = emu
        .sim
        .fib(f.spines[0])
        .is_some_and(|fib| fib.lookup(p("10.7.0.0/24").nth(1)).is_none());
    ScenarioResult {
        name: "route-map filter change blackholes a ToR".into(),
        cause: RootCause::ConfigBug,
        detected: missing,
        verification_covers: true,
        detail: "implicit deny in a new route map withdrew the ToR's subnet".into(),
    }
}

/// §2 config bugs: "incorrect AS number."
#[must_use]
pub fn config_wrong_remote_as(seed: u64) -> ScenarioResult {
    let f = fig7();
    let mut emu = emulate(&f.topo, MockupOptions::builder().seed(seed).build());
    let l1 = f.leaves[0];
    let mut cfg = emu
        .prep
        .configs
        .iter()
        .find(|(d, _)| *d == l1)
        .unwrap()
        .1
        .clone();
    // Fat-finger T1's AS on L1.
    if let Some(bgp) = cfg.bgp.as_mut() {
        let t1_asn = f.topo.device(f.tors[0]).asn;
        for n in &mut bgp.neighbors {
            if n.remote_as == t1_asn {
                n.remote_as = Asn(t1_asn.0 + 100);
            }
        }
    }
    emu.reload(l1, cfg, false);
    let _ = emu.settle();
    // The session to T1 never comes back: visible in `show bgp summary`.
    let resp = emu.sim.mgmt_sync(l1, MgmtCommand::ShowBgpSummary);
    let down = match resp {
        Some(MgmtResponse::BgpSummary(rows)) => rows.iter().filter(|(_, up, _)| !up).count(),
        _ => 0,
    };
    ScenarioResult {
        name: "mistyped remote-as keeps a session down".into(),
        cause: RootCause::ConfigBug,
        detected: down >= 1,
        verification_covers: true,
        detail: format!("{down} session(s) failed to re-establish after the change"),
    }
}

/// §2 config bugs: "overlapping IP assignments" — another device starts
/// originating an already-used subnet.
#[must_use]
pub fn config_overlapping_prefix(seed: u64) -> ScenarioResult {
    let f = fig7();
    let mut emu = emulate(&f.topo, MockupOptions::builder().seed(seed).build());
    // T3 (a different pod) is configured with T1's subnet by mistake.
    emu.sim
        .mgmt_sync(f.tors[2], MgmtCommand::AddNetwork(p("10.7.0.0/24")));
    let _ = emu.settle();
    // Probes toward T1's subnet from T5's pod now sometimes land on T3.
    let mut misdelivered = 0;
    for flow in 0..32u32 {
        let sig = emu.inject_packet(
            f.tors[4],
            p("10.7.4.0/24").nth(flow + 1),
            p("10.7.0.0/24").nth(flow + 1),
        );
        let (path, _) = emu.pull_packets(sig).expect("probe traced");
        if path.last() == Some(&f.tors[2]) {
            misdelivered += 1;
        }
    }
    ScenarioResult {
        name: "overlapping IP assignment hijacks traffic".into(),
        cause: RootCause::ConfigBug,
        detected: misdelivered > 0,
        verification_covers: true,
        detail: format!("{misdelivered}/32 flows toward the subnet landed on the wrong ToR"),
    }
}

/// §2 human errors: mistyping `deny 10.0.0.0/20` as `deny 10.0.0.0/2`.
#[must_use]
pub fn human_error_acl_typo(seed: u64) -> ScenarioResult {
    let f = fig7();
    let mut emu = emulate(&f.topo, MockupOptions::builder().seed(seed).build());
    let l1 = f.leaves[0];
    // Intention: block one /20. Typo: /2 — swallowing a quarter of the
    // address space, including all of 10/8.
    let typo = Acl {
        entries: vec![
            AclEntry {
                seq: 10,
                action: Action::Deny,
                src: p("10.0.0.0/2"),
                dst: p("0.0.0.0/0"),
            },
            AclEntry {
                seq: 20,
                action: Action::Permit,
                src: p("0.0.0.0/0"),
                dst: p("0.0.0.0/0"),
            },
        ],
    };
    emu.sim.mgmt_sync(
        l1,
        MgmtCommand::ApplyAclIn {
            iface: "et0".into(),
            acl_name: "BLOCK".into(),
            acl: typo,
        },
    );
    let _ = emu.settle();
    // Traffic that must not be affected (10.7.x server space) dies on
    // the flows that traverse L1.
    let mut blocked = false;
    for flow in 0..16u32 {
        let sig = emu.inject_packet(
            f.tors[0],
            p("10.7.0.0/24").nth(flow + 3),
            p("10.7.2.0/24").nth(flow + 4),
        );
        if emu
            .pull_packets(sig)
            .is_ok_and(|(_, o)| o == ForwardDecision::DropAcl)
        {
            blocked = true;
        }
    }
    ScenarioResult {
        name: "`deny 10.0.0.0/2` typo blocks production traffic".into(),
        cause: RootCause::HumanError,
        detected: blocked,
        verification_covers: true,
        detail: "practice run in the emulator catches the typo before production".into(),
    }
}

/// Table 1 hardware failures: a fiber cut's control-plane consequences.
#[must_use]
pub fn hardware_fiber_cut(seed: u64) -> ScenarioResult {
    let f = fig7();
    let mut emu = emulate(&f.topo, MockupOptions::builder().seed(seed).build());
    let (lid, _, _) = f.topo.neighbors(f.tors[0]).next().unwrap();
    let before = emu
        .sim
        .fib(f.spines[0])
        .and_then(|fib| {
            fib.lookup(p("10.7.0.0/24").nth(1))
                .map(|(_, e)| e.next_hops.len())
        })
        .unwrap_or(0);
    emu.disconnect(lid);
    let _ = emu.settle();
    let after = emu
        .sim
        .fib(f.spines[0])
        .and_then(|fib| {
            fib.lookup(p("10.7.0.0/24").nth(1))
                .map(|(_, e)| e.next_hops.len())
        })
        .unwrap_or(0);
    ScenarioResult {
        name: "fiber cut narrows ECMP and is visible in pulled state".into(),
        cause: RootCause::HardwareFailure,
        detected: after < before && after > 0,
        verification_covers: false,
        detail: format!("spine ECMP width {before} → {after} after the cut"),
    }
}

/// §9's honest limitation: silent ASIC packet drops (hardware data-plane
/// faults) are *not* caught by a control-plane emulator.
#[must_use]
pub fn hardware_silent_drop(_seed: u64) -> ScenarioResult {
    ScenarioResult {
        name: "silent ASIC packet drops (not emulatable)".into(),
        cause: RootCause::HardwareFailure,
        detected: false,
        verification_covers: false,
        detail: "CrystalNet is control-plane-faithful; ASIC faults need hardware tests (§9)".into(),
    }
}
