//! The `Prepare` phase (§3.3, §6.1).
//!
//! `Prepare` gathers everything `Mockup` needs: it takes the operator's
//! must-have device list, computes a safe boundary, pulls topology,
//! configurations (injecting unified SSH credentials) and boundary route
//! snapshots, and plans the VM fleet.

use crate::plan::{plan_vms, PlanOptions, VmPlan};
use crystalnet_boundary::{synthesize_speakers, Classification, SpeakerPlan};
use crystalnet_config::{generate_device, DeviceConfig};
use crystalnet_net::{DeviceId, Role, Topology};
use crystalnet_routing::{ControlPlaneSim, PathAttrs, SpeakerScript};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How the emulated set is chosen.
pub enum BoundaryMode {
    /// Emulate every in-domain device; external peers become speakers
    /// (how the §8.2 whole-datacenter runs work).
    WholeNetwork,
    /// Run Algorithm 1 upward from the must-have devices (§5.2).
    SafeDcBoundary,
    /// An operator-supplied emulated set (validated elsewhere).
    Explicit(BTreeSet<DeviceId>),
}

/// Where speaker announcements come from.
pub enum SpeakerSource<'a> {
    /// Speakers announce the replaced device's own originated prefixes —
    /// exact when the replaced device is a stub (WAN peers at the
    /// datacenter edge).
    OriginatedOnly,
    /// Replay each boundary device's Adj-RIB-In recorded from a converged
    /// production emulation (the general case, §5.1).
    Snapshot(&'a ControlPlaneSim),
}

/// Everything `Mockup` consumes.
pub struct PrepareOutput {
    /// The production topology snapshot.
    pub topo: Topology,
    /// Devices that will run real firmware.
    pub emulated: BTreeSet<DeviceId>,
    /// The operator's original must-have list.
    pub must_have: Vec<DeviceId>,
    /// Per-device configurations (credentials injected).
    pub configs: Vec<(DeviceId, DeviceConfig)>,
    /// Speaker programs.
    pub speaker_plan: SpeakerPlan,
    /// The VM fleet plan.
    pub vm_plan: VmPlan,
}

impl PrepareOutput {
    /// Speaker device ids in the plan.
    #[must_use]
    pub fn speakers(&self) -> Vec<DeviceId> {
        self.speaker_plan.scripts.iter().map(|(d, _)| *d).collect()
    }

    /// The boundary classification (recomputed on demand).
    #[must_use]
    pub fn classification(&self) -> Classification {
        Classification::new(&self.topo, &self.emulated)
    }
}

/// Runs `Prepare`: boundary selection, config generation, speaker
/// synthesis, VM planning.
#[must_use]
pub fn prepare(
    topo: &Topology,
    must_have: &[DeviceId],
    boundary: BoundaryMode,
    speaker_source: SpeakerSource<'_>,
    plan_opts: &PlanOptions,
) -> PrepareOutput {
    let emulated: BTreeSet<DeviceId> = match boundary {
        BoundaryMode::WholeNetwork => topo
            .devices()
            .filter(|(_, d)| d.role != Role::External)
            .map(|(id, _)| id)
            .collect(),
        BoundaryMode::SafeDcBoundary => crystalnet_boundary::find_safe_dc_boundary(topo, must_have),
        BoundaryMode::Explicit(set) => set,
    };
    let class = Classification::new(topo, &emulated);

    let configs: Vec<(DeviceId, DeviceConfig)> = emulated
        .iter()
        .map(|&id| (id, generate_device(topo, id)))
        .collect();

    let speaker_plan = match speaker_source {
        SpeakerSource::Snapshot(sim) => synthesize_speakers(topo, &class, sim),
        SpeakerSource::OriginatedOnly => originated_speakers(topo, &class),
    };

    let emulated_vec: Vec<DeviceId> = emulated.iter().copied().collect();
    let speakers: Vec<DeviceId> = speaker_plan.scripts.iter().map(|(d, _)| *d).collect();
    let vm_plan = plan_vms(topo, &emulated_vec, &speakers, plan_opts);

    PrepareOutput {
        topo: topo.clone(),
        emulated,
        must_have: must_have.to_vec(),
        configs,
        speaker_plan,
        vm_plan,
    }
}

/// Builds speaker scripts announcing each replaced device's own
/// originated prefixes (path = just its AS).
fn originated_speakers(topo: &Topology, class: &Classification) -> SpeakerPlan {
    let mut plan = SpeakerPlan::default();
    let emulated = class.emulated();
    for speaker in class.speakers() {
        let dev = topo.device(speaker);
        let routes: Vec<_> = dev
            .originated
            .iter()
            .map(|&p| {
                (
                    p,
                    Arc::new(PathAttrs {
                        as_path: vec![dev.asn],
                        ..PathAttrs::originated(dev.loopback)
                    }),
                )
            })
            .collect();
        let mut per_iface = Vec::new();
        for (_, local, remote) in topo.neighbors(speaker) {
            if emulated.binary_search(&remote.device).is_ok() {
                per_iface.push((
                    local.iface,
                    SpeakerScript {
                        routes: routes.clone(),
                    },
                ));
            }
        }
        plan.scripts.push((speaker, per_iface));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_net::ClosParams;

    #[test]
    fn whole_network_prepare_covers_the_dc() {
        let dc = ClosParams::s_dc().build();
        let prep = prepare(
            &dc.topo,
            &[],
            BoundaryMode::WholeNetwork,
            SpeakerSource::OriginatedOnly,
            &PlanOptions::default(),
        );
        assert_eq!(prep.emulated.len(), dc.internal_device_count());
        assert_eq!(prep.configs.len(), prep.emulated.len());
        // External peers become speakers, announcing default + internet
        // prefixes + loopback.
        assert_eq!(prep.speakers().len(), dc.externals.len());
        assert_eq!(
            prep.speaker_plan.route_count(),
            dc.externals.len() * 10 // loopback + default + 8 internet
        );
        assert!(prep.vm_plan.vm_count() > 0);
        // Credentials are injected everywhere (§6.1).
        assert!(prep.configs.iter().all(|(_, c)| c.credentials.is_some()));
    }

    #[test]
    fn safe_dc_boundary_prepare_shrinks_the_emulation() {
        let dc = ClosParams::s_dc().build();
        let whole = prepare(
            &dc.topo,
            &[],
            BoundaryMode::WholeNetwork,
            SpeakerSource::OriginatedOnly,
            &PlanOptions::default(),
        );
        let must = vec![dc.pods[0].tors[0]];
        let pod = prepare(
            &dc.topo,
            &must,
            BoundaryMode::SafeDcBoundary,
            SpeakerSource::OriginatedOnly,
            &PlanOptions::default(),
        );
        assert!(pod.emulated.len() < whole.emulated.len() / 2);
        assert!(pod.vm_plan.vm_count() < whole.vm_plan.vm_count());
        assert!(pod.emulated.contains(&must[0]));
    }

    #[test]
    fn explicit_boundary_is_respected() {
        let dc = ClosParams::s_dc().build();
        let set: BTreeSet<DeviceId> = [dc.borders[0], dc.borders[1]].into_iter().collect();
        let prep = prepare(
            &dc.topo,
            &[dc.borders[0]],
            BoundaryMode::Explicit(set.clone()),
            SpeakerSource::OriginatedOnly,
            &PlanOptions::default(),
        );
        assert_eq!(prep.emulated, set);
        // Speakers = spines + external peers adjacent to the borders.
        assert!(!prep.speakers().is_empty());
    }
}
