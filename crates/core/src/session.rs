//! Copy-on-write emulation forks: the session-oriented rehearsal API.
//!
//! The Fig. 3 validation loop wants *many* candidate operations checked
//! against one faithfully emulated network. `apply_change` mutates the
//! single warm [`Emulation`] in place, so concurrent what-if plans used
//! to mean re-converging a fresh mockup per plan — exactly the §8.2
//! cost the incremental-validation story exists to avoid. This module
//! replaces that with sessions:
//!
//! ```text
//! let fork = emu.fork();          // cheap deep fork of the converged baseline
//! fork.apply(&changes)?;          // rehearse on the child
//! fork.diff_against_parent();     // what moved, relative to the baseline
//! fork.commit(&mut emu);          // adopt — or just drop the fork to roll back
//! ```
//!
//! A fork is **independent**: it owns every mutable layer (OS instances,
//! event-queue residue, cloud CPU accounting, telemetry) and shares only
//! the immutable or interned state — the `Arc<PrepareOutput>` spine and
//! the hash-consed `Arc<PathAttrs>`/`Arc<Provenance>` route entries —
//! structurally. That makes a fork's memory cost proportional to the
//! *mutable* state (FIB indexes, sessions, queues), not to the interned
//! route universe, and makes forks `Send`: N rehearsals can run on N
//! worker threads off one warm baseline.
//!
//! A fork is **exact**: the engine's clock, scheduling sequence, and
//! every queued event's `(time, key, seq)` rank are replicated, so a
//! change set applied on the fork converges bit-identically to the same
//! set applied in place. [`Emulation::rehearse`] is now a thin
//! fork-per-step wrapper, and the pre-existing warm≡cold differential
//! proofs hold unchanged.
//!
//! Dropping a fork *is* the rollback — there is no undo log to replay,
//! which subsumes the old plan-rollback item.

use crate::emulation::{Emulation, EmulationError};
use crate::faults::{FaultPlan, FaultReport};
use crate::rehearse::{diff_snapshots, ConvergenceDelta, FibChange};
use crystalnet_config::ChangeSet;
use crystalnet_dataplane::FibEntry;
use crystalnet_net::{DeviceId, Ipv4Prefix};
use crystalnet_sim::SimTime;
use crystalnet_telemetry::CowStats;
use std::collections::{BTreeMap, BTreeSet};

/// Internal alias for the per-device FIB + provenance-digest tables a
/// snapshot anchors diffs against.
type FibTables = BTreeMap<DeviceId, BTreeMap<Ipv4Prefix, (FibEntry, Option<u64>)>>;

/// What a fork captured from its parent, summarized.
///
/// The snapshot records the fork point — virtual time, queue residue,
/// RNG/epoch state — and keeps the parent's full FIB tables as the
/// anchor for [`EmulationFork::diff_against_parent`]. The *live* state
/// (OS instances, sessions, cloud) lives in the forked child itself;
/// this struct is the stable, inspectable description of where the
/// fork branched.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Virtual time at the fork point.
    pub at: SimTime,
    /// Devices emulated at the fork point.
    pub devices: usize,
    /// Total installed FIB prefixes across those devices.
    pub fib_entries: usize,
    /// Total Loc-RIB prefixes across those devices.
    pub rib_entries: usize,
    /// Event-queue residue carried into the fork (pending events —
    /// typically protocol timers on a quiescent baseline).
    pub pending_events: usize,
    /// Events the parent had executed when the fork was taken (the
    /// fork's engine resumes from exactly this position).
    pub events_executed: u64,
    /// Speaker incarnation epochs at the fork point, in device order.
    pub speaker_epochs: BTreeMap<DeviceId, u64>,
    /// The run seed (boot/provisioning jitter derive from it).
    pub seed: u64,
    /// Per-device FIB + provenance digests — the diff anchor.
    pub(crate) fibs: FibTables,
}

impl Snapshot {
    /// One-line human summary for rehearsal logs.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "fork point at {:?}: {} device(s), {} FIB entries, {} pending event(s)",
            self.at, self.devices, self.fib_entries, self.pending_events
        )
    }
}

impl Emulation {
    /// Captures a [`Snapshot`] of the converged state: the FIB/RIB
    /// tables, queue residue, and epoch/RNG position a fork would
    /// branch from.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let scope: BTreeSet<DeviceId> = self.sandboxes.keys().copied().collect();
        let fibs = self.fib_snapshot(&scope);
        let (mut rib_entries, mut fib_entries) = (0, 0);
        for &dev in &scope {
            if let Some(os) = self.sim.os(dev) {
                rib_entries += os.rib_size();
                fib_entries += os.fib().len();
            }
        }
        Snapshot {
            at: self.now(),
            devices: scope.len(),
            fib_entries,
            rib_entries,
            pending_events: self.sim.engine.events_pending(),
            events_executed: self.sim.engine.events_executed(),
            speaker_epochs: self.speaker_epochs.iter().map(|(&d, &e)| (d, e)).collect(),
            seed: self.options.seed,
            fibs,
        }
    }

    /// Forks the emulation: an independent child branched from the
    /// current converged state, wrapped in a rehearsal session.
    ///
    /// The child shares unchanged route state structurally (interned
    /// `Arc` attributes/provenance, the `Arc<PrepareOutput>` spine) and
    /// owns everything mutable, so changes and faults applied to it
    /// never perturb `self`. Take as many forks as you like — each is
    /// `Send` and can rehearse on its own worker thread.
    ///
    /// # Examples
    ///
    /// ```
    /// # use crystalnet::prelude::*;
    /// # use crystalnet::PlanOptions;
    /// # use crystalnet_net::fixtures::fig7;
    /// # let f = fig7();
    /// # let prep = prepare(&f.topo, &[], BoundaryMode::WholeNetwork,
    /// #     SpeakerSource::OriginatedOnly, &PlanOptions::default());
    /// let mut emu = mockup(Arc::new(prep), MockupOptions::builder().build());
    /// let lid = f.topo.links().next().map(|(lid, _)| lid).unwrap();
    ///
    /// // Rehearse a drain on a fork; the baseline stays warm and clean.
    /// let mut fork = emu.fork();
    /// let delta = fork.apply(&ChangeSet::new().link_down(lid))?;
    /// assert!(delta.total_fib_changes() > 0);
    /// assert_eq!(fork.diff_against_parent().len(),
    ///            fork.deltas()[0].fib_changes.len());
    ///
    /// drop(fork); // not convinced — rollback is just dropping the fork
    /// assert_eq!(emu.snapshot().fib_entries, emu.fork().base().fib_entries);
    /// # Ok::<(), EmulationError>(())
    /// ```
    #[must_use]
    pub fn fork(&self) -> EmulationFork {
        EmulationFork {
            base: self.snapshot(),
            child: self.fork_emulation(),
            deltas: Vec::new(),
        }
    }
}

/// A rehearsal session: one forked child plus the snapshot it branched
/// from.
///
/// Apply [`ChangeSet`]s and [`FaultPlan`]s to the child, inspect the
/// cumulative [`EmulationFork::diff_against_parent`], then either
/// [`commit`](EmulationFork::commit) the child over the parent or drop
/// the session to discard every step (drop ≡ rollback).
pub struct EmulationFork {
    child: Emulation,
    base: Snapshot,
    deltas: Vec<ConvergenceDelta>,
}

impl EmulationFork {
    /// Applies a change set to the forked child and re-converges it
    /// incrementally, exactly like the in-place path would have.
    ///
    /// # Errors
    ///
    /// The same errors as the in-place path: unknown targets,
    /// reachability guards, [`EmulationError::NotConverged`]. The fork
    /// stays usable after a validation error (nothing was mutated), and
    /// the parent is untouched in every case.
    pub fn apply(&mut self, changes: &ChangeSet) -> Result<ConvergenceDelta, EmulationError> {
        let delta = self.child.apply_change_inner(changes)?;
        self.deltas.push(delta.clone());
        Ok(delta)
    }

    /// Injects a fault plan into the forked child (VM crashes, link-flap
    /// bursts, speaker crashes, delayed heartbeats) and lets its health
    /// monitor recover — without the parent ever noticing.
    ///
    /// # Errors
    ///
    /// Whatever [`Emulation::run_fault_plan`] answers — typically
    /// [`EmulationError::NotConverged`] when recovery misses the
    /// deadline.
    pub fn inject_faults(&mut self, plan: &FaultPlan) -> Result<FaultReport, EmulationError> {
        self.child.run_fault_plan(plan)
    }

    /// Diffs the child's *current* FIBs against the parent's at the fork
    /// point: the cumulative blast radius of every step applied so far,
    /// per device, prefix-sorted. Devices with no mutations are omitted.
    #[must_use]
    pub fn diff_against_parent(&self) -> BTreeMap<DeviceId, Vec<FibChange>> {
        let scope: BTreeSet<DeviceId> = self.child.sandboxes.keys().copied().collect();
        diff_snapshots(&self.base.fibs, &self.child.fib_snapshot(&scope))
    }

    /// The snapshot this session branched from.
    #[must_use]
    pub fn base(&self) -> &Snapshot {
        &self.base
    }

    /// The per-step deltas of every successful [`EmulationFork::apply`],
    /// in application order.
    #[must_use]
    pub fn deltas(&self) -> &[ConvergenceDelta] {
        &self.deltas
    }

    /// Read access to the forked child (pull reports, traces, states —
    /// the whole monitor surface works on it).
    #[must_use]
    pub fn emulation(&self) -> &Emulation {
        &self.child
    }

    /// Mutable access to the forked child, for control-surface calls the
    /// session does not wrap (packet injection, `login_and_run`, …).
    pub fn emulation_mut(&mut self) -> &mut Emulation {
        &mut self.child
    }

    /// Estimates the fork's copy-on-write sharing: bytes shared with
    /// the parent (the `Arc<PrepareOutput>` spine, the process-wide
    /// interned path-attribute pool) versus bytes deep-copied for the
    /// child (RIB/FIB tables, event-queue residue). Entry counts ×
    /// struct-size estimates, not allocator measurements — computed on
    /// demand, so an unused fork costs nothing extra.
    #[must_use]
    pub fn cow_stats(&self) -> CowStats {
        let mem = self.child.memory_section(None);
        // The immutable prepare spine: configs, topology tables, VM
        // plan. Flat per-record estimates, like the memory section's.
        let prep = &self.child.prep;
        let prep_bytes = prep.configs.len() as u64 * 256
            + prep.topo.device_count() as u64 * 128
            + prep.topo.link_count() as u64 * 64;
        CowStats {
            shared_bytes: prep_bytes + mem.interner.table_bytes,
            copied_bytes: mem.devices.rib_bytes
                + mem.devices.fib_bytes
                + mem.event_queue.residue_bytes,
        }
    }

    /// [`Emulation::pull_report`] on the forked child, with the memory
    /// section's `fork_cow` block filled in (profiling runs only).
    #[must_use]
    pub fn pull_report(&self) -> crystalnet_telemetry::RunReport {
        let mut report = self.child.pull_report();
        if let Some(memory) = report.memory.as_mut() {
            memory.fork_cow = Some(self.cow_stats());
        }
        report
    }

    /// Commits the session: the parent *becomes* the child, adopting
    /// every applied step. Returns the per-step deltas.
    ///
    /// Commit targets the emulation the fork came from; committing over
    /// an unrelated emulation is not detected (the child simply replaces
    /// it wholesale).
    pub fn commit(self, parent: &mut Emulation) -> Vec<ConvergenceDelta> {
        *parent = self.child;
        self.deltas
    }

    /// Unwraps the session into the bare child emulation (for promoting
    /// a fork to a standalone baseline instead of committing it back).
    #[must_use]
    pub fn into_emulation(self) -> Emulation {
        self.child
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time `Send` audit: forks must be movable to worker
    /// threads, which is the whole point of the `Rc` → `Arc` spine
    /// conversion.
    #[test]
    fn forks_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Emulation>();
        assert_send::<EmulationFork>();
        assert_send::<Snapshot>();
    }
}
