//! Incremental operation rehearsal: config-diff-driven re-convergence.
//!
//! The Fig. 3 validation loop re-runs "apply change → inspect" many times
//! against one mockup. Rebuilding the emulation for every step would pay
//! the full route-ready cost each time (§8.2: minutes to hours at L-DC
//! scale), so [`Emulation::apply_change`] instead:
//!
//! 1. classifies each change ([`classify_diff`]) — a no-op diff touches
//!    nothing, a policy edit soft-refreshes the live session (RFC 2918
//!    route refresh), only neighbor/interface/platform changes pay a
//!    session reset;
//! 2. predicts the **dirty set** of devices the change can reach by
//!    walking adjacency with speakers as barriers and a per-seed
//!    [`RippleScope`] bound
//!    ([`dirty_region_scoped`](crystalnet_net::dirty_region_scoped())) —
//!    static speakers never react (§5), so a ripple legally stops
//!    there, and structurally bounded changes (an ACL-only refresh, a
//!    single link drain) stay inside their pod instead of flooding the
//!    fabric. The FIB diff is computed over the *full* emulated scope,
//!    so the prediction is audited, not trusted: any mutation landing
//!    outside it is counted in
//!    `core.apply_change.fib_changes_outside_dirty`;
//! 3. re-converges the existing sim on the same sharded executor while
//!    untouched devices keep their interned RIB/FIB state; and
//! 4. returns a typed [`ConvergenceDelta`]: per-device FIB
//!    adds/removes/modifies with provenance digests, the dirty-set size,
//!    and the virtual/wall cost of the step.
//!
//! The warm-start result is **bit-identical** to a cold full re-settle
//! from the same seed (`crates/core/tests/incremental.rs` proves it per
//! change kind, across worker counts): the event engine is deterministic
//! and quiescent state carries no pending work, so resuming it is
//! equivalent to replaying history.

use crate::emulation::{converge, Emulation, EmulationError};
use crate::metrics::JournalKind;
use crystalnet_config::{
    classify_diff, classify_ripple, config_diff, Change, ChangeImpact, ChangeSet, DeviceConfig,
};
use crystalnet_dataplane::{FibEntry, NextHop};
use crystalnet_net::{dirty_region_scoped, DeviceId, Ipv4Prefix, LinkId, RippleScope};
use crystalnet_routing::{MgmtCommand, PathAttrs, SpeakerOs, SpeakerScript};
use crystalnet_sim::{SimDuration, SimTime};
use crystalnet_telemetry::FieldValue;
use std::collections::{BTreeMap, BTreeSet};

/// How one prefix's FIB entry changed across an [`Emulation::apply_change`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FibChangeKind {
    /// The prefix was not installed before and is now.
    Added,
    /// The prefix was installed before and is gone.
    Removed,
    /// The prefix stayed installed but its ECMP set changed.
    Modified,
}

impl FibChangeKind {
    /// Stable lowercase label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FibChangeKind::Added => "added",
            FibChangeKind::Removed => "removed",
            FibChangeKind::Modified => "modified",
        }
    }
}

/// One FIB mutation observed on one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibChange {
    /// The affected prefix.
    pub prefix: Ipv4Prefix,
    /// Add / remove / modify.
    pub kind: FibChangeKind,
    /// The ECMP set *after* the change (empty for [`FibChangeKind::Removed`]).
    pub next_hops: Vec<NextHop>,
    /// Provenance digest of the route behind the entry (PR 4's causal
    /// chain): the new route's digest for adds/modifies, the old route's
    /// for removes. `None` when the OS keeps no provenance (speakers).
    pub prov_digest: Option<u64>,
}

/// What `apply_change` did with one [`Change`] of the set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedChange {
    /// The change kind label ([`Change::kind`]).
    pub kind: &'static str,
    /// The device the change targeted, when it targets one.
    pub device: Option<DeviceId>,
    /// For config updates: the diff classification that picked the
    /// mechanism (no-op / soft refresh / session reset).
    pub impact: Option<ChangeImpact>,
}

/// The typed result of one incremental re-convergence step.
///
/// Everything except [`ConvergenceDelta::wall`] is a deterministic
/// world fact: identical across repetitions and `workers` values for the
/// same seed and change history.
#[derive(Debug, Clone)]
pub struct ConvergenceDelta {
    /// What was applied, in change-set order.
    pub applied: Vec<AppliedChange>,
    /// The predicted dirty set: devices the change is structurally
    /// expected to reach (scoped ripple walk), in id order. A reporting
    /// aid, not a correctness bound — [`Self::fib_changes`] is diffed
    /// over the full emulated scope regardless.
    pub dirty: Vec<DeviceId>,
    /// Virtual time when the step reached route quiescence.
    pub settled_at: SimTime,
    /// Virtual time the step cost (settled minus the pre-step clock).
    pub virtual_cost: SimDuration,
    /// Simulation events executed by the step.
    pub events_executed: u64,
    /// Wall-clock cost of the step (the number `BENCH_incremental.json`
    /// compares against a full re-settle).
    pub wall: std::time::Duration,
    /// Per-device FIB mutations over the full emulated scope,
    /// prefix-sorted. Authoritative: computed independently of the
    /// predicted dirty set, so a too-narrow prediction can never hide a
    /// mutation (misses are counted in
    /// `core.apply_change.fib_changes_outside_dirty`).
    pub fib_changes: BTreeMap<DeviceId, Vec<FibChange>>,
    /// Health-plane probes launched while the step converged (zero when
    /// the health plane is off). With the probe mesh on, a rehearsed
    /// change reports *its own* SLO impact: how much traffic the
    /// transient would have hurt.
    pub probes_sent: u64,
    /// Health-plane probes lost during the step's transient.
    pub probes_lost: u64,
    /// Watchdog incidents fired during the step (health and congestion
    /// watchdogs combined).
    pub incidents: u64,
    /// Traffic-plane flows launched while the step converged (zero when
    /// the traffic plane is off). With traffic on, a rehearsed change
    /// reports what the transient did to *user load*, not just probes.
    pub flows_sent: u64,
    /// Flows lost during the step's transient.
    pub flows_lost: u64,
    /// Flows that completed during the step but crossed a device whose
    /// route had changed mid-flight — traffic rerouted by the change.
    pub flows_rerouted: u64,
}

impl ConvergenceDelta {
    /// Total FIB mutations across all devices.
    #[must_use]
    pub fn total_fib_changes(&self) -> usize {
        self.fib_changes.values().map(Vec::len).sum()
    }

    /// Whether the step touched nothing (empty or no-op change set).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.dirty.is_empty()
    }

    /// One-line human summary for rehearsal logs.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} change(s) -> {} dirty device(s), {} FIB change(s), {:?} virtual",
            self.applied.len(),
            self.dirty.len(),
            self.total_fib_changes(),
            self.virtual_cost,
        );
        if self.probes_sent > 0 {
            s.push_str(&format!(
                "; SLO impact: {}/{} probe(s) lost, {} incident(s)",
                self.probes_lost, self.probes_sent, self.incidents,
            ));
        }
        if self.flows_sent > 0 {
            s.push_str(&format!(
                "; traffic impact: {}/{} flow(s) lost, {} rerouted",
                self.flows_lost, self.flows_sent, self.flows_rerouted,
            ));
        }
        s
    }
}

/// One named step of a multi-step rehearsal plan.
#[derive(Debug, Clone)]
pub struct RehearsalStep {
    /// Operator-facing step name ("drain T1", "tighten import policy").
    pub name: String,
    /// The changes the step applies.
    pub changes: ChangeSet,
}

impl RehearsalStep {
    /// A named step.
    #[must_use]
    pub fn new(name: impl Into<String>, changes: ChangeSet) -> Self {
        RehearsalStep {
            name: name.into(),
            changes,
        }
    }
}

/// The per-step results of [`Emulation::rehearse`].
#[derive(Debug, Clone, Default)]
pub struct RehearsalReport {
    /// `(step name, delta)` in execution order.
    pub steps: Vec<(String, ConvergenceDelta)>,
}

impl RehearsalReport {
    /// Total FIB mutations across all steps.
    #[must_use]
    pub fn total_fib_changes(&self) -> usize {
        self.steps.iter().map(|(_, d)| d.total_fib_changes()).sum()
    }

    /// Multi-line human summary, one line per step.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, delta) in &self.steps {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(&delta.summary());
            out.push('\n');
        }
        out
    }
}

/// A validated, ready-to-inject plan for one [`Change`].
enum Planned {
    Config {
        dev: DeviceId,
        cfg: Box<DeviceConfig>,
        impact: ChangeImpact,
    },
    LinkDown(LinkId),
    LinkUp(LinkId),
    Remove(DeviceId),
    SpeakerSwap {
        dev: DeviceId,
        scripts: Vec<(u32, SpeakerScript)>,
    },
}

impl Emulation {
    /// Applies a parsed change set to the *running* emulation and
    /// re-converges only the devices the change can affect.
    ///
    /// Mechanisms by classification:
    ///
    /// * [`ChangeImpact::NoOp`] — nothing is injected; the change
    ///   contributes nothing to the dirty set.
    /// * [`ChangeImpact::SoftRefresh`] — the new config is soft-applied
    ///   over the live session
    ///   ([`MgmtCommand::UpdatePolicy`]): policies rebind, exports
    ///   refresh, and peers replay their announcements (route refresh) so
    ///   tightened import policy re-filters without a session reset.
    /// * [`ChangeImpact::SessionReset`] — the device reloads
    ///   ([`Emulation::reload`], two-layer mode) and pays real downtime.
    ///
    /// Link and topology changes map to their Table 2 operations;
    /// [`Change::SpeakerRouteSwap`] rebuilds the speaker's static script
    /// with a bumped incarnation epoch so peers flush and resync.
    ///
    /// Nothing is mutated until the whole set validates.
    ///
    /// # Migration
    ///
    /// Deprecated in favour of the session API: mutating the baseline in
    /// place cannot be rolled back, so a failed or unwanted rehearsal
    /// poisons the warm emulation. Fork instead — the child is free to
    /// fail, and dropping it *is* the rollback:
    ///
    /// ```
    /// # use crystalnet::prelude::*;
    /// # use crystalnet::PlanOptions;
    /// # use crystalnet_net::fixtures::fig7;
    /// # let f = fig7();
    /// # let prep = prepare(&f.topo, &[], BoundaryMode::WholeNetwork,
    /// #     SpeakerSource::OriginatedOnly, &PlanOptions::default());
    /// let mut emu = mockup(Arc::new(prep), MockupOptions::builder().build());
    ///
    /// // Rehearse a link drain on a fork and inspect exactly what moved.
    /// let lid = f.topo.links().next().map(|(lid, _)| lid).unwrap();
    /// let mut fork = emu.fork();
    /// let delta = fork.apply(&ChangeSet::new().link_down(lid))?;
    /// assert!(!delta.dirty.is_empty());
    /// assert!(delta.total_fib_changes() > 0);
    /// fork.commit(&mut emu); // or drop `fork` to roll back
    /// # Ok::<(), EmulationError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`EmulationError::UnknownDevice`] / [`EmulationError::UnknownLink`]
    /// for targets outside the emulation, the `guard`
    /// reachability errors for unreachable devices, and
    /// [`EmulationError::NotConverged`] if re-convergence misses the
    /// deadline.
    #[deprecated(
        since = "0.7.0",
        note = "mutating the baseline in place cannot be rolled back; \
                use `Emulation::fork()` + `EmulationFork::apply` and then \
                `commit` (or drop the fork to roll back)"
    )]
    pub fn apply_change(
        &mut self,
        changes: &ChangeSet,
    ) -> Result<ConvergenceDelta, EmulationError> {
        self.apply_change_inner(changes)
    }

    /// The in-place change application behind both the deprecated
    /// [`Emulation::apply_change`] and the session API (a fork applies
    /// changes to its *child* through this, then swaps the child in on
    /// commit).
    pub(crate) fn apply_change_inner(
        &mut self,
        changes: &ChangeSet,
    ) -> Result<ConvergenceDelta, EmulationError> {
        let wall_start = std::time::Instant::now();
        let start = self.now();
        let mark = self.sim.engine.checkpoint();
        // Health-plane totals before the step: the diff after settle is
        // the step's own SLO impact (zeros when the plane is off).
        let health_before = self
            .sim
            .health()
            .map(|h| (h.probes_sent, h.probes_lost, h.incidents.len() as u64))
            .unwrap_or_default();
        // Same trick for the traffic plane: the step's own flow losses
        // and reroutes are the totals' diff across the settle.
        let traffic_before = self
            .sim
            .traffic()
            .map(|t| {
                (
                    t.flows_sent,
                    t.flows_lost,
                    t.flows_rerouted,
                    t.incidents.len() as u64,
                )
            })
            .unwrap_or_default();

        // ---- Validate everything before mutating anything. ----
        let mut planned = Vec::new();
        let mut applied = Vec::new();
        let mut seeds: Vec<(DeviceId, RippleScope)> = Vec::new();
        for change in &changes.changes {
            match change {
                Change::ConfigUpdate { device, config } => {
                    let dev = *device;
                    self.guard(dev)?;
                    let old = self.effective_config(dev).ok_or_else(|| {
                        EmulationError::UnknownDevice(self.topo.device(dev).name.clone())
                    })?;
                    let diff = config_diff(old, config);
                    let impact = classify_diff(&diff);
                    if impact != ChangeImpact::NoOp {
                        seeds.push((dev, classify_ripple(&diff)));
                    }
                    applied.push(AppliedChange {
                        kind: change.kind(),
                        device: Some(dev),
                        impact: Some(impact),
                    });
                    planned.push(Planned::Config {
                        dev,
                        cfg: config.clone(),
                        impact,
                    });
                }
                Change::LinkDown(lid) | Change::LinkUp(lid) => {
                    if (lid.0 as usize) >= self.topo.link_count() {
                        return Err(EmulationError::UnknownLink(lid.0));
                    }
                    let (a, _, b, _, _) =
                        crystalnet_routing::ControlPlaneSim::link_endpoints(&self.topo, *lid);
                    if !self.sandboxes.contains_key(&a) || !self.sandboxes.contains_key(&b) {
                        return Err(EmulationError::UnknownLink(lid.0));
                    }
                    // A link flap changes reachability, but Clos ECMP
                    // redundancy keeps the blast radius inside the
                    // affected pod(s) plus the shared spine/border tier.
                    seeds.push((a, RippleScope::PodAndCore));
                    seeds.push((b, RippleScope::PodAndCore));
                    applied.push(AppliedChange {
                        kind: change.kind(),
                        device: None,
                        impact: None,
                    });
                    planned.push(if matches!(change, Change::LinkDown(_)) {
                        Planned::LinkDown(*lid)
                    } else {
                        Planned::LinkUp(*lid)
                    });
                }
                Change::DeviceRemove(dev) => {
                    let dev = *dev;
                    self.guard(dev)?;
                    seeds.push((dev, RippleScope::Fabric));
                    for n in self.topo.neighbor_devices(dev) {
                        if self.sandboxes.contains_key(&n) {
                            seeds.push((n, RippleScope::Fabric));
                        }
                    }
                    applied.push(AppliedChange {
                        kind: change.kind(),
                        device: Some(dev),
                        impact: None,
                    });
                    planned.push(Planned::Remove(dev));
                }
                Change::SpeakerRouteSwap { device, routes } => {
                    let dev = *device;
                    self.guard(dev)?;
                    let plan_entry = self
                        .prep
                        .speaker_plan
                        .scripts
                        .iter()
                        .find(|(d, _)| *d == dev)
                        .ok_or_else(|| {
                            EmulationError::UnknownDevice(self.topo.device(dev).name.clone())
                        })?;
                    let loopback = self.topo.device(dev).loopback;
                    let script = SpeakerScript {
                        routes: routes
                            .iter()
                            .map(|r| {
                                (
                                    r.prefix,
                                    PathAttrs {
                                        as_path: r.as_path.clone(),
                                        med: r.med,
                                        ..PathAttrs::originated(loopback)
                                    }
                                    .intern(),
                                )
                            })
                            .collect(),
                    };
                    let scripts: Vec<(u32, SpeakerScript)> = plan_entry
                        .1
                        .iter()
                        .map(|(iface, _)| (*iface, script.clone()))
                        .collect();
                    seeds.push((dev, RippleScope::Fabric));
                    applied.push(AppliedChange {
                        kind: change.kind(),
                        device: Some(dev),
                        impact: None,
                    });
                    planned.push(Planned::SpeakerSwap { dev, scripts });
                }
            }
        }

        // ---- Dirty set: scoped adjacency walk, speakers as barriers. ----
        let scope: BTreeSet<DeviceId> = self.sandboxes.keys().copied().collect();
        let barriers: BTreeSet<DeviceId> = self.classification.speakers().into_iter().collect();
        let dirty = dirty_region_scoped(&self.topo, &scope, &seeds, &barriers);

        // ---- Snapshot FIBs before injecting. The snapshot covers the
        // full emulated scope, not just the predicted dirty set, so the
        // reported diff is authoritative even if the prediction is short.
        let before = self.fib_snapshot(&scope);

        // ---- Inject. ----
        let now = self.now();
        let mut did_work = false;
        for plan in planned {
            match plan {
                Planned::Config { dev, cfg, impact } => match impact {
                    ChangeImpact::NoOp => {}
                    ChangeImpact::SoftRefresh => {
                        self.config_overrides.insert(dev, (*cfg).clone());
                        self.sim.mgmt(dev, MgmtCommand::UpdatePolicy(cfg), now);
                        did_work = true;
                    }
                    ChangeImpact::SessionReset => {
                        self.reload(dev, *cfg, false);
                        did_work = true;
                    }
                },
                Planned::LinkDown(lid) => {
                    self.disconnect(lid);
                    did_work = true;
                }
                Planned::LinkUp(lid) => {
                    self.connect(lid);
                    did_work = true;
                }
                Planned::Remove(dev) => {
                    self.remove_device(dev, now);
                    did_work = true;
                }
                Planned::SpeakerSwap { dev, scripts } => {
                    self.swap_speaker(dev, scripts, now);
                    did_work = true;
                }
            }
        }

        // ---- Re-converge only if something was injected. ----
        let settled_at = if did_work {
            let deadline = start + self.options.deadline;
            converge(
                &mut self.sim,
                &self.topo,
                &self.sandboxes,
                &self.options,
                deadline,
            )
            .ok_or(EmulationError::NotConverged)?
        } else {
            start
        };

        // ---- Diff the full scope's FIBs (authoritative). ----
        let after = self.fib_snapshot(&scope);
        let fib_changes = diff_snapshots(&before, &after);
        let outside_dirty = fib_changes.keys().filter(|d| !dirty.contains(d)).count() as u64;
        let (virtual_cost, events_executed) = self.sim.engine.cost_since(&mark);

        // The boundary memo must still agree with a fresh classification
        // everywhere the change reached (cheap audit instead of
        // re-running Algorithm 1 over the whole topology).
        debug_assert!(
            self.classification
                .validate_region(&self.topo, &self.emulated_now, dirty.iter())
                .is_none(),
            "incremental boundary memo diverged from fresh classification"
        );

        let health_after = self
            .sim
            .health()
            .map(|h| (h.probes_sent, h.probes_lost, h.incidents.len() as u64))
            .unwrap_or_default();
        let traffic_after = self
            .sim
            .traffic()
            .map(|t| {
                (
                    t.flows_sent,
                    t.flows_lost,
                    t.flows_rerouted,
                    t.incidents.len() as u64,
                )
            })
            .unwrap_or_default();
        let delta = ConvergenceDelta {
            applied,
            dirty: dirty.iter().copied().collect(),
            settled_at,
            virtual_cost,
            events_executed,
            wall: wall_start.elapsed(),
            fib_changes,
            probes_sent: health_after.0 - health_before.0,
            probes_lost: health_after.1 - health_before.1,
            incidents: (health_after.2 - health_before.2) + (traffic_after.3 - traffic_before.3),
            flows_sent: traffic_after.0 - traffic_before.0,
            flows_lost: traffic_after.1 - traffic_before.1,
            flows_rerouted: traffic_after.2 - traffic_before.2,
        };

        // Incident correlation reads this log: the change lands at its
        // application instant, described by its change kinds.
        if !delta.applied.is_empty() {
            let kinds: Vec<&'static str> = delta.applied.iter().map(|a| a.kind).collect();
            self.change_log
                .push((start, format!("change applied: {}", kinds.join(", "))));
        }

        let total = delta.total_fib_changes() as u64;
        let rec = &mut *self.sim.engine.world.recorder;
        if rec.profiling_enabled() {
            rec.profile_add(
                crystalnet_telemetry::profile::keys::APPLY,
                wall_start.elapsed().as_nanos() as u64,
            );
        }
        if rec.enabled() {
            rec.span("apply_change", None, start, settled_at);
            rec.counter_add("core.apply_change.steps", delta.applied.len() as u64);
            rec.counter_add("core.apply_change.dirty_devices", delta.dirty.len() as u64);
            rec.counter_add("core.apply_change.fib_changes", total);
            // Prediction misses: devices whose FIB moved outside the
            // predicted dirty set. Zero when the scope bound is honest.
            rec.counter_add("core.apply_change.fib_changes_outside_dirty", outside_dirty);
            rec.event(
                settled_at,
                "apply_change",
                vec![
                    ("changes", FieldValue::U64(delta.applied.len() as u64)),
                    ("dirty", FieldValue::U64(delta.dirty.len() as u64)),
                    ("fib_changes", FieldValue::U64(total)),
                ],
            );
        }
        Ok(delta)
    }

    /// Runs a multi-step rehearsal plan — the Fig. 3 loop's "apply the
    /// staged operation one step at a time, inspecting the blast radius
    /// after each" — stopping at the first step that fails.
    ///
    /// Implemented as a thin fork-per-step wrapper over the session API:
    /// each step runs on a fresh [`fork`](Emulation::fork) and is
    /// committed back on success. Forking replicates the engine position
    /// and every OS exactly, so the per-step deltas — and the final FIBs
    /// — are bit-identical to the old in-place path (the warm≡cold
    /// differential tests pin this).
    ///
    /// # Errors
    ///
    /// The first failing step's [`EmulationError`]; earlier steps remain
    /// applied, and the failing step's fork is committed too (a
    /// rehearsal that dies mid-plan leaves the mockup in the failed
    /// state for inspection, exactly like production would).
    pub fn rehearse(&mut self, plan: &[RehearsalStep]) -> Result<RehearsalReport, EmulationError> {
        let mut report = RehearsalReport::default();
        for step in plan {
            let mut fork = self.fork();
            match fork.apply(&step.changes) {
                Ok(delta) => {
                    report.steps.push((step.name.clone(), delta));
                    fork.commit(self);
                }
                Err(e) => {
                    fork.commit(self);
                    return Err(e);
                }
            }
        }
        Ok(report)
    }

    /// Decommissions one device mid-run: links drop, its pending events
    /// are discarded, its sandbox stops, and the boundary memo is patched
    /// in place.
    fn remove_device(&mut self, dev: DeviceId, at: SimTime) {
        for (lid, _, _) in self.topo.neighbors(dev).collect::<Vec<_>>() {
            let ep = crystalnet_routing::ControlPlaneSim::link_endpoints(&self.topo, lid);
            self.sim.link_down(ep, at);
        }
        self.sim.power_off(dev);
        self.sim.remove_device(dev);
        if let Some(sb) = self.sandboxes.remove(&dev) {
            self.engines[sb.vm].stop(sb.device);
            self.engines[sb.vm].stop(sb.phynet);
        }
        self.emulated_now.remove(&dev);
        self.classification
            .remove_device(&self.topo, &self.emulated_now, dev);
        self.config_overrides.remove(&dev);
        self.recovering_until.remove(&dev);
        let rec = &mut *self.sim.engine.world.recorder;
        if rec.enabled() {
            rec.event(
                at,
                "device_removed",
                vec![("device", FieldValue::U64(u64::from(dev.0)))],
            );
        }
    }

    /// Replaces a speaker's static announcement program: the old
    /// incarnation powers off (peers see link-down and flush), a fresh
    /// [`SpeakerOs`] with a bumped epoch boots, and peers resync against
    /// the new script.
    fn swap_speaker(&mut self, dev: DeviceId, scripts: Vec<(u32, SpeakerScript)>, at: SimTime) {
        self.sim.power_off(dev);
        let neighbor_links: Vec<_> = self.topo.neighbors(dev).map(|(lid, _, _)| lid).collect();
        for &lid in &neighbor_links {
            let ep = crystalnet_routing::ControlPlaneSim::link_endpoints(&self.topo, lid);
            self.sim.link_down(ep, at);
        }
        let info = self.topo.device(dev);
        let mut os = SpeakerOs::new(info.name.clone(), info.asn, info.loopback);
        for (iface, script) in &scripts {
            os.set_script(*iface, script.clone());
        }
        let epoch = *self
            .speaker_epochs
            .entry(dev)
            .and_modify(|e| *e += 1)
            .or_insert(1);
        os.set_epoch(epoch);
        self.journal_event(
            at,
            JournalKind::SpeakerRestarted {
                device: dev.0,
                epoch,
            },
        );
        self.sim.replace_os(dev, Box::new(os));
        self.sim.boot_device(dev, at);
        for &lid in &neighbor_links {
            let ep = crystalnet_routing::ControlPlaneSim::link_endpoints(&self.topo, lid);
            self.sim.link_up(ep, at);
        }
        self.speaker_overrides.insert(dev, scripts);
    }

    /// FIB + provenance-digest snapshot for a set of devices. Devices
    /// with no OS (removed) contribute an empty map.
    pub(crate) fn fib_snapshot(
        &self,
        devs: &BTreeSet<DeviceId>,
    ) -> BTreeMap<DeviceId, BTreeMap<Ipv4Prefix, (FibEntry, Option<u64>)>> {
        let mut out = BTreeMap::new();
        for &dev in devs {
            let mut table = BTreeMap::new();
            if let Some(os) = self.sim.os(dev) {
                for (prefix, entry) in os.fib().iter() {
                    let digest = os.route_detail(prefix).map(|rd| rd.prov.digest());
                    table.insert(prefix, (entry.clone(), digest));
                }
            }
            out.insert(dev, table);
        }
        out
    }
}

/// Per-device diff of two FIB snapshots; devices with no mutations are
/// omitted.
pub(crate) fn diff_snapshots(
    before: &BTreeMap<DeviceId, BTreeMap<Ipv4Prefix, (FibEntry, Option<u64>)>>,
    after: &BTreeMap<DeviceId, BTreeMap<Ipv4Prefix, (FibEntry, Option<u64>)>>,
) -> BTreeMap<DeviceId, Vec<FibChange>> {
    let empty = BTreeMap::new();
    let mut out = BTreeMap::new();
    for (&dev, old) in before {
        let new = after.get(&dev).unwrap_or(&empty);
        let mut changes = Vec::new();
        for (prefix, (entry, digest)) in old {
            match new.get(prefix) {
                None => changes.push(FibChange {
                    prefix: *prefix,
                    kind: FibChangeKind::Removed,
                    next_hops: Vec::new(),
                    prov_digest: *digest,
                }),
                Some((new_entry, new_digest)) if new_entry != entry => {
                    changes.push(FibChange {
                        prefix: *prefix,
                        kind: FibChangeKind::Modified,
                        next_hops: new_entry.next_hops.clone(),
                        prov_digest: *new_digest,
                    });
                }
                Some(_) => {}
            }
        }
        for (prefix, (entry, digest)) in new {
            if !old.contains_key(prefix) {
                changes.push(FibChange {
                    prefix: *prefix,
                    kind: FibChangeKind::Added,
                    next_hops: entry.next_hops.clone(),
                    prov_digest: *digest,
                });
            }
        }
        changes.sort_by_key(|c| c.prefix);
        if !changes.is_empty() {
            out.insert(dev, changes);
        }
    }
    out
}
