//! Emulation metrics: the quantities §8 reports.

use crystalnet_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Latency breakdown of one Mockup run (the Figure 8 quantities).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MockupMetrics {
    /// "The duration from the start of creating an emulation to the
    /// moment when all virtual links are up."
    pub network_ready: SimDuration,
    /// "The duration from Network-ready to the moment when all routes
    /// are installed and stabilized in all switches."
    pub route_ready: SimDuration,
    /// Sum of the two: the full Mockup latency.
    pub mockup: SimDuration,
    /// Total route operations processed during bring-up.
    pub route_ops: u64,
    /// Virtual instant at which the emulation became usable.
    pub ready_at: SimTime,
}

impl MockupMetrics {
    /// Builds from the two phase boundaries.
    #[must_use]
    pub fn from_phases(network_ready_at: SimTime, route_ready_at: SimTime, route_ops: u64) -> Self {
        let network_ready = network_ready_at.since(SimTime::ZERO);
        let route_ready = route_ready_at.since(network_ready_at);
        MockupMetrics {
            network_ready,
            route_ready,
            mockup: network_ready + route_ready,
            route_ops,
            ready_at: route_ready_at,
        }
    }
}

/// One structured entry in the recovery journal.
///
/// Every step of fault handling — injection, detection, retry, quarantine,
/// completion — emits exactly one event, so tests and benches can assert
/// recovery latency and ordering without scraping logs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalKind {
    /// A fault from the plan fired.
    FaultInjected {
        /// Human-readable fault description.
        fault: String,
    },
    /// The health monitor missed a VM heartbeat.
    HeartbeatMissed {
        /// VM index.
        vm: usize,
        /// Consecutive misses so far.
        consecutive: u32,
    },
    /// Misses crossed the threshold: the VM is declared dead.
    VmDeclaredDead {
        /// VM index.
        vm: usize,
    },
    /// One bounded-backoff reboot attempt.
    RebootAttempt {
        /// VM index.
        vm: usize,
        /// Attempt ordinal (1-based).
        attempt: u32,
        /// Backoff waited before this attempt.
        backoff: SimDuration,
    },
    /// Retries exhausted: the VM's sandboxes are quarantined off it.
    VmQuarantined {
        /// The dead VM's index.
        vm: usize,
        /// The spare VM index the sandboxes move to.
        spare: usize,
    },
    /// A speaker agent was restarted with a fresh incarnation epoch.
    SpeakerRestarted {
        /// The speaker device.
        device: u32,
        /// The new incarnation epoch.
        epoch: u64,
    },
    /// One transition of a link-flap burst.
    LinkFlap {
        /// The flapping link.
        link: u32,
        /// Whether this transition brought the link up.
        up: bool,
    },
    /// All of a fault's devices are booted and re-linked.
    RecoveryComplete {
        /// The recovered VM index (the spare, if quarantined).
        vm: usize,
        /// Detection + retry + re-placement latency.
        latency: SimDuration,
        /// Devices brought back.
        devices: usize,
    },
}

/// A timestamped [`JournalKind`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalEvent {
    /// Virtual instant of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: JournalKind,
}

/// The append-only recovery journal of one emulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryJournal {
    /// Events in emission order. Within one fault's handling the `at`
    /// stamps ascend, but a later fault's detection can predate an
    /// earlier fault's completion, so the journal is not globally
    /// time-sorted.
    pub events: Vec<JournalEvent>,
}

impl RecoveryJournal {
    /// Appends an event.
    pub fn record(&mut self, at: SimTime, kind: JournalKind) {
        self.events.push(JournalEvent { at, kind });
    }

    /// All completed recoveries as `(vm, latency, devices)`.
    #[must_use]
    pub fn recoveries(&self) -> Vec<(usize, SimDuration, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                JournalKind::RecoveryComplete {
                    vm,
                    latency,
                    devices,
                } => Some((vm, latency, devices)),
                _ => None,
            })
            .collect()
    }

    /// The worst completed recovery latency, if any recovery completed.
    #[must_use]
    pub fn max_recovery_latency(&self) -> Option<SimDuration> {
        self.recoveries().iter().map(|&(_, l, _)| l).max()
    }

    /// Heartbeat misses recorded for `vm`.
    #[must_use]
    pub fn misses_for(&self, vm: usize) -> u32 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, JournalKind::HeartbeatMissed { vm: v, .. } if v == vm))
            .count() as u32
    }

    /// Whether `vm` was ever declared dead.
    #[must_use]
    pub fn declared_dead(&self, vm: usize) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, JournalKind::VmDeclaredDead { vm: v } if v == vm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_add_up() {
        let nr = SimTime::ZERO + SimDuration::from_secs(90);
        let rr = nr + SimDuration::from_mins(20);
        let m = MockupMetrics::from_phases(nr, rr, 1000);
        assert_eq!(m.network_ready, SimDuration::from_secs(90));
        assert_eq!(m.route_ready, SimDuration::from_mins(20));
        assert_eq!(
            m.mockup,
            SimDuration::from_secs(90) + SimDuration::from_mins(20)
        );
        assert_eq!(m.ready_at, rr);
    }

    #[test]
    fn journal_queries_filter_by_kind_and_vm() {
        let mut j = RecoveryJournal::default();
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        j.record(
            t(1),
            JournalKind::HeartbeatMissed {
                vm: 0,
                consecutive: 1,
            },
        );
        j.record(
            t(2),
            JournalKind::HeartbeatMissed {
                vm: 0,
                consecutive: 2,
            },
        );
        j.record(t(2), JournalKind::VmDeclaredDead { vm: 0 });
        j.record(
            t(9),
            JournalKind::RecoveryComplete {
                vm: 0,
                latency: SimDuration::from_secs(7),
                devices: 3,
            },
        );
        assert_eq!(j.misses_for(0), 2);
        assert_eq!(j.misses_for(1), 0);
        assert!(j.declared_dead(0));
        assert!(!j.declared_dead(1));
        assert_eq!(j.recoveries(), vec![(0, SimDuration::from_secs(7), 3)]);
        assert_eq!(j.max_recovery_latency(), Some(SimDuration::from_secs(7)));
    }
}
