//! Emulation metrics: the quantities §8 reports.

use crystalnet_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Latency breakdown of one Mockup run (the Figure 8 quantities).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MockupMetrics {
    /// "The duration from the start of creating an emulation to the
    /// moment when all virtual links are up."
    pub network_ready: SimDuration,
    /// "The duration from Network-ready to the moment when all routes
    /// are installed and stabilized in all switches."
    pub route_ready: SimDuration,
    /// Sum of the two: the full Mockup latency.
    pub mockup: SimDuration,
    /// Total route operations processed during bring-up.
    pub route_ops: u64,
    /// Virtual instant at which the emulation became usable.
    pub ready_at: SimTime,
}

impl MockupMetrics {
    /// Builds from the two phase boundaries.
    #[must_use]
    pub fn from_phases(network_ready_at: SimTime, route_ready_at: SimTime, route_ops: u64) -> Self {
        let network_ready = network_ready_at.since(SimTime::ZERO);
        let route_ready = route_ready_at.since(network_ready_at);
        MockupMetrics {
            network_ready,
            route_ready,
            mockup: network_ready + route_ready,
            route_ops,
            ready_at: route_ready_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_add_up() {
        let nr = SimTime::ZERO + SimDuration::from_secs(90);
        let rr = nr + SimDuration::from_mins(20);
        let m = MockupMetrics::from_phases(nr, rr, 1000);
        assert_eq!(m.network_ready, SimDuration::from_secs(90));
        assert_eq!(m.route_ready, SimDuration::from_mins(20));
        assert_eq!(
            m.mockup,
            SimDuration::from_secs(90) + SimDuration::from_mins(20)
        );
        assert_eq!(m.ready_at, rr);
    }
}
