//! Emulation metrics: the quantities §8 reports.

use crystalnet_sim::{SimDuration, SimTime};
use crystalnet_telemetry::{EventRecord, FieldValue};
use serde::{Deserialize, Serialize};

/// Latency breakdown of one Mockup run (the Figure 8 quantities).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MockupMetrics {
    /// "The duration from the start of creating an emulation to the
    /// moment when all virtual links are up."
    pub network_ready: SimDuration,
    /// "The duration from Network-ready to the moment when all routes
    /// are installed and stabilized in all switches."
    pub route_ready: SimDuration,
    /// Sum of the two: the full Mockup latency.
    pub mockup: SimDuration,
    /// Total route operations processed during bring-up.
    pub route_ops: u64,
    /// Virtual instant at which the emulation became usable.
    pub ready_at: SimTime,
}

impl MockupMetrics {
    /// Builds from the two phase boundaries.
    #[must_use]
    pub fn from_phases(network_ready_at: SimTime, route_ready_at: SimTime, route_ops: u64) -> Self {
        let network_ready = network_ready_at.since(SimTime::ZERO);
        let route_ready = route_ready_at.since(network_ready_at);
        MockupMetrics {
            network_ready,
            route_ready,
            mockup: network_ready + route_ready,
            route_ops,
            ready_at: route_ready_at,
        }
    }
}

/// One structured entry in the recovery journal.
///
/// Every step of fault handling — injection, detection, retry, quarantine,
/// completion — emits exactly one event, so tests and benches can assert
/// recovery latency and ordering without scraping logs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalKind {
    /// A fault from the plan fired.
    FaultInjected {
        /// Human-readable fault description.
        fault: String,
    },
    /// The health monitor missed a VM heartbeat.
    HeartbeatMissed {
        /// VM index.
        vm: usize,
        /// Consecutive misses so far.
        consecutive: u32,
    },
    /// Misses crossed the threshold: the VM is declared dead.
    VmDeclaredDead {
        /// VM index.
        vm: usize,
    },
    /// One bounded-backoff reboot attempt.
    RebootAttempt {
        /// VM index.
        vm: usize,
        /// Attempt ordinal (1-based).
        attempt: u32,
        /// Backoff waited before this attempt.
        backoff: SimDuration,
    },
    /// Retries exhausted: the VM's sandboxes are quarantined off it.
    VmQuarantined {
        /// The dead VM's index.
        vm: usize,
        /// The spare VM index the sandboxes move to.
        spare: usize,
    },
    /// A speaker agent was restarted with a fresh incarnation epoch.
    SpeakerRestarted {
        /// The speaker device.
        device: u32,
        /// The new incarnation epoch.
        epoch: u64,
    },
    /// One transition of a link-flap burst.
    LinkFlap {
        /// The flapping link.
        link: u32,
        /// Whether this transition brought the link up.
        up: bool,
    },
    /// All of a fault's devices are booted and re-linked.
    RecoveryComplete {
        /// The recovered VM index (the spare, if quarantined).
        vm: usize,
        /// Detection + retry + re-placement latency.
        latency: SimDuration,
        /// Devices brought back.
        devices: usize,
    },
}

/// A timestamped [`JournalKind`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalEvent {
    /// Virtual instant of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: JournalKind,
}

impl JournalEvent {
    /// Renders the entry as a typed telemetry event — the rows of the run
    /// report's `journal` section.
    #[must_use]
    pub fn to_event_record(&self) -> EventRecord {
        let (name, fields): (&str, Vec<(&str, FieldValue)>) = match &self.kind {
            JournalKind::FaultInjected { fault } => (
                "fault_injected",
                vec![("fault", FieldValue::Str(fault.clone()))],
            ),
            JournalKind::HeartbeatMissed { vm, consecutive } => (
                "heartbeat_missed",
                vec![
                    ("vm", FieldValue::U64(*vm as u64)),
                    ("consecutive", FieldValue::U64(u64::from(*consecutive))),
                ],
            ),
            JournalKind::VmDeclaredDead { vm } => (
                "vm_declared_dead",
                vec![("vm", FieldValue::U64(*vm as u64))],
            ),
            JournalKind::RebootAttempt {
                vm,
                attempt,
                backoff,
            } => (
                "reboot_attempt",
                vec![
                    ("vm", FieldValue::U64(*vm as u64)),
                    ("attempt", FieldValue::U64(u64::from(*attempt))),
                    ("backoff", FieldValue::Dur(*backoff)),
                ],
            ),
            JournalKind::VmQuarantined { vm, spare } => (
                "vm_quarantined",
                vec![
                    ("vm", FieldValue::U64(*vm as u64)),
                    ("spare", FieldValue::U64(*spare as u64)),
                ],
            ),
            JournalKind::SpeakerRestarted { device, epoch } => (
                "speaker_restarted",
                vec![
                    ("device", FieldValue::U64(u64::from(*device))),
                    ("epoch", FieldValue::U64(*epoch)),
                ],
            ),
            JournalKind::LinkFlap { link, up } => (
                "link_flap",
                vec![
                    ("link", FieldValue::U64(u64::from(*link))),
                    ("up", FieldValue::Bool(*up)),
                ],
            ),
            JournalKind::RecoveryComplete {
                vm,
                latency,
                devices,
            } => (
                "recovery_complete",
                vec![
                    ("vm", FieldValue::U64(*vm as u64)),
                    ("latency", FieldValue::Dur(*latency)),
                    ("devices", FieldValue::U64(*devices as u64)),
                ],
            ),
        };
        EventRecord::new(self.at, name, fields)
    }
}

/// The append-only recovery journal of one emulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryJournal {
    /// Events in emission order. Within one fault's handling the `at`
    /// stamps ascend, but a later fault's detection can predate an
    /// earlier fault's completion, so the journal is not globally
    /// time-sorted.
    pub events: Vec<JournalEvent>,
}

impl RecoveryJournal {
    /// Appends an event.
    pub fn record(&mut self, at: SimTime, kind: JournalKind) {
        self.events.push(JournalEvent { at, kind });
    }

    /// All completed recoveries as `(vm, latency, devices)`.
    #[must_use]
    pub fn recoveries(&self) -> Vec<(usize, SimDuration, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                JournalKind::RecoveryComplete {
                    vm,
                    latency,
                    devices,
                } => Some((vm, latency, devices)),
                _ => None,
            })
            .collect()
    }

    /// The worst completed recovery latency, if any recovery completed.
    #[must_use]
    pub fn max_recovery_latency(&self) -> Option<SimDuration> {
        self.recoveries().iter().map(|&(_, l, _)| l).max()
    }

    /// Heartbeat misses recorded for `vm`.
    #[must_use]
    pub fn misses_for(&self, vm: usize) -> u32 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, JournalKind::HeartbeatMissed { vm: v, .. } if v == vm))
            .count() as u32
    }

    /// Whether `vm` was ever declared dead.
    #[must_use]
    pub fn declared_dead(&self, vm: usize) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, JournalKind::VmDeclaredDead { vm: v } if v == vm))
    }

    /// A globally time-sorted copy: stable merge by `at`, with emission
    /// order as the tie-break. `events` preserves raw emission order
    /// (within one fault the stamps ascend, but across overlapping faults
    /// they interleave); this is the safe surface for "last recovery" /
    /// "first miss" style reads.
    #[must_use]
    pub fn sorted(&self) -> RecoveryJournal {
        let mut events = self.events.clone();
        // Vec::sort_by_key is stable, so equal stamps keep emission order.
        events.sort_by_key(|e| e.at);
        RecoveryJournal { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_add_up() {
        let nr = SimTime::ZERO + SimDuration::from_secs(90);
        let rr = nr + SimDuration::from_mins(20);
        let m = MockupMetrics::from_phases(nr, rr, 1000);
        assert_eq!(m.network_ready, SimDuration::from_secs(90));
        assert_eq!(m.route_ready, SimDuration::from_mins(20));
        assert_eq!(
            m.mockup,
            SimDuration::from_secs(90) + SimDuration::from_mins(20)
        );
        assert_eq!(m.ready_at, rr);
    }

    #[test]
    fn journal_queries_filter_by_kind_and_vm() {
        let mut j = RecoveryJournal::default();
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        j.record(
            t(1),
            JournalKind::HeartbeatMissed {
                vm: 0,
                consecutive: 1,
            },
        );
        j.record(
            t(2),
            JournalKind::HeartbeatMissed {
                vm: 0,
                consecutive: 2,
            },
        );
        j.record(t(2), JournalKind::VmDeclaredDead { vm: 0 });
        j.record(
            t(9),
            JournalKind::RecoveryComplete {
                vm: 0,
                latency: SimDuration::from_secs(7),
                devices: 3,
            },
        );
        assert_eq!(j.misses_for(0), 2);
        assert_eq!(j.misses_for(1), 0);
        assert!(j.declared_dead(0));
        assert!(!j.declared_dead(1));
        assert_eq!(j.recoveries(), vec![(0, SimDuration::from_secs(7), 3)]);
        assert_eq!(j.max_recovery_latency(), Some(SimDuration::from_secs(7)));
    }

    #[test]
    fn sorted_is_a_stable_time_merge() {
        let mut j = RecoveryJournal::default();
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        // Overlapping faults: the second fault's detection predates the
        // first fault's completion, and two entries share a stamp.
        j.record(
            t(20),
            JournalKind::RecoveryComplete {
                vm: 0,
                latency: SimDuration::from_secs(10),
                devices: 1,
            },
        );
        j.record(
            t(5),
            JournalKind::HeartbeatMissed {
                vm: 1,
                consecutive: 1,
            },
        );
        j.record(t(5), JournalKind::VmDeclaredDead { vm: 1 });
        let s = j.sorted();
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.events[0].at, t(5));
        // Stable: equal stamps keep emission order (miss before declared).
        assert!(matches!(
            s.events[0].kind,
            JournalKind::HeartbeatMissed { .. }
        ));
        assert!(matches!(
            s.events[1].kind,
            JournalKind::VmDeclaredDead { .. }
        ));
        assert_eq!(s.events[2].at, t(20));
        // The original emission order is untouched.
        assert_eq!(j.events[0].at, t(20));
    }

    #[test]
    fn journal_events_render_typed_records() {
        let ev = JournalEvent {
            at: SimTime::ZERO + SimDuration::from_secs(3),
            kind: JournalKind::RebootAttempt {
                vm: 2,
                attempt: 1,
                backoff: SimDuration::from_secs(4),
            },
        };
        let rec = ev.to_event_record();
        assert_eq!(rec.name, "reboot_attempt");
        assert_eq!(rec.field("vm"), Some(&FieldValue::U64(2)));
        assert_eq!(
            rec.field("backoff"),
            Some(&FieldValue::Dur(SimDuration::from_secs(4)))
        );
    }
}
