//! User-facing view of the traffic plane: per-link utilisation and
//! per-pair flow gauges as a canonical [`TrafficReport`].
//!
//! The runtime half — flow sampling, ECMP spreading, congestion
//! watchdogs, shard fork/absorb — lives in `crystalnet_routing::traffic`
//! because it runs inside the harness. This module renders what that
//! runtime accumulated: offered vs delivered load, which links ran hot
//! (and how hot, against the configured capacity per period), and which
//! source/destination pairs breached their flow SLO. Congestion
//! *incidents* are not here — they merge into the shared timeline
//! returned by `Emulation::incidents()` so operators read one ordered
//! story, not two.

use crystalnet_net::{DeviceId, LinkId};
use crystalnet_routing::traffic::TrafficState;
use crystalnet_sim::SimDuration;
use serde::{Serialize, Value};

/// One directed link's utilisation gauges, as observed from the
/// transmitting device. Both directions of a physical link appear as
/// separate rows (they are charged independently — a link can be hot
/// one way and idle the other).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkUtilisation {
    /// Transmitting device.
    pub device: DeviceId,
    /// Transmitting device's hostname.
    pub host: String,
    /// The link carrying the bytes.
    pub link: LinkId,
    /// Total bytes transmitted over the whole run.
    pub bytes: u64,
    /// Hottest single traffic period, in bytes.
    pub peak_bytes: u64,
    /// Capacity of one traffic period, in bytes (from
    /// `link_capacity_bps` × period).
    pub capacity_bytes: u64,
    /// Peak-period utilisation in percent (integer, truncating —
    /// byte-stable across platforms). May exceed 100 when the link was
    /// over-subscribed.
    pub peak_util_pct: u64,
}

impl Serialize for LinkUtilisation {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("device".to_string(), Value::Uint(u64::from(self.device.0))),
            ("host".to_string(), Value::Str(self.host.clone())),
            ("link".to_string(), Value::Uint(u64::from(self.link.0))),
            ("bytes".to_string(), Value::Uint(self.bytes)),
            ("peak_bytes".to_string(), Value::Uint(self.peak_bytes)),
            (
                "capacity_bytes".to_string(),
                Value::Uint(self.capacity_bytes),
            ),
            ("peak_util_pct".to_string(), Value::Uint(self.peak_util_pct)),
        ])
    }
}

/// One source/destination pair's flow gauges: delivery, latency, and
/// the rolling flow-SLO window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairTraffic {
    /// Flow source device.
    pub src: DeviceId,
    /// Flow source hostname.
    pub src_host: String,
    /// Flow destination device.
    pub dst: DeviceId,
    /// Flow destination hostname.
    pub dst_host: String,
    /// Flows completed (delivered + lost).
    pub sent: u64,
    /// Flows that reached `dst`.
    pub delivered: u64,
    /// Flows that died en route.
    pub lost: u64,
    /// Sum of delivered flows' path latencies (ns).
    pub latency_ns_sum: u64,
    /// Worst delivered path latency (ns).
    pub latency_ns_max: u64,
    /// Losses inside the current flow-SLO window.
    pub window_lost: u64,
    /// Flows inside the current flow-SLO window.
    pub window_len: u64,
    /// Whether the pair is currently in flow-SLO breach.
    pub breached: bool,
}

impl Serialize for PairTraffic {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("src".to_string(), Value::Uint(u64::from(self.src.0))),
            ("src_host".to_string(), Value::Str(self.src_host.clone())),
            ("dst".to_string(), Value::Uint(u64::from(self.dst.0))),
            ("dst_host".to_string(), Value::Str(self.dst_host.clone())),
            ("sent".to_string(), Value::Uint(self.sent)),
            ("delivered".to_string(), Value::Uint(self.delivered)),
            ("lost".to_string(), Value::Uint(self.lost)),
            (
                "latency_ns_sum".to_string(),
                Value::Uint(self.latency_ns_sum),
            ),
            (
                "latency_ns_max".to_string(),
                Value::Uint(self.latency_ns_max),
            ),
            ("window_lost".to_string(), Value::Uint(self.window_lost)),
            ("window_len".to_string(), Value::Uint(self.window_len)),
            ("breached".to_string(), Value::Bool(self.breached)),
        ])
    }
}

/// The traffic plane's state, rendered for export. Canonical:
/// byte-stable across reps, worker counts, and `profiling(true)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficReport {
    /// Whether the traffic plane was enabled for this run.
    pub enabled: bool,
    /// Flow-generation period (zero when disabled).
    pub period: SimDuration,
    /// Flows launched (may exceed `delivered + lost` — in-flight flows
    /// at pull time are counted here only).
    pub flows_sent: u64,
    /// Flows that reached their destination.
    pub flows_delivered: u64,
    /// Flows that died en route (any cause).
    pub flows_lost: u64,
    /// Delivered flows that crossed a device whose route for the flow's
    /// destination had changed since first observed — traffic that rode
    /// through a transient.
    pub flows_rerouted: u64,
    /// Bytes offered to the network (all launched flows).
    pub bytes_offered: u64,
    /// Bytes that arrived.
    pub bytes_delivered: u64,
    /// Bytes lost with their flows.
    pub bytes_lost: u64,
    /// Congestion incidents on the timeline.
    pub incident_count: u64,
    /// Per-directed-link utilisation, sorted by `(device, link)`.
    pub links: Vec<LinkUtilisation>,
    /// Per-pair gauges, sorted by `(src, dst)`.
    pub pairs: Vec<PairTraffic>,
}

impl TrafficReport {
    /// A disabled report (traffic plane off).
    #[must_use]
    pub fn disabled() -> Self {
        TrafficReport {
            enabled: false,
            period: SimDuration::ZERO,
            flows_sent: 0,
            flows_delivered: 0,
            flows_lost: 0,
            flows_rerouted: 0,
            bytes_offered: 0,
            bytes_delivered: 0,
            bytes_lost: 0,
            incident_count: 0,
            links: Vec::new(),
            pairs: Vec::new(),
        }
    }

    /// Renders the runtime state; `resolve` maps device ids to
    /// hostnames.
    #[must_use]
    pub fn from_state(state: &TrafficState, resolve: impl Fn(DeviceId) -> String) -> Self {
        let capacity_bytes = state.cfg.capacity_bytes_per_period();
        let links = state
            .link_bytes
            .iter()
            .map(|(&(device, link), &bytes)| {
                let peak_bytes = state.link_peak.get(&(device, link)).copied().unwrap_or(0);
                LinkUtilisation {
                    device,
                    host: resolve(device),
                    link,
                    bytes,
                    peak_bytes,
                    capacity_bytes,
                    peak_util_pct: peak_bytes
                        .saturating_mul(100)
                        .checked_div(capacity_bytes)
                        .unwrap_or(0),
                }
            })
            .collect();
        let pairs = state
            .pairs
            .iter()
            .map(|(&(src, dst), p)| PairTraffic {
                src,
                src_host: resolve(src),
                dst,
                dst_host: resolve(dst),
                sent: p.sent,
                delivered: p.delivered,
                lost: p.lost,
                latency_ns_sum: p.latency_ns_sum,
                latency_ns_max: p.latency_ns_max,
                window_lost: p.window_lost(),
                window_len: p.window.len() as u64,
                breached: p.breached,
            })
            .collect();
        TrafficReport {
            enabled: true,
            period: state.cfg.period,
            flows_sent: state.flows_sent,
            flows_delivered: state.flows_delivered,
            flows_lost: state.flows_lost,
            flows_rerouted: state.flows_rerouted,
            bytes_offered: state.bytes_offered,
            bytes_delivered: state.bytes_delivered,
            bytes_lost: state.bytes_lost,
            incident_count: state.incidents.len() as u64,
            links,
            pairs,
        }
    }

    /// Canonical JSON export: bit-identical across reps and worker
    /// counts for the same seed. Ends with a newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_value())
            .expect("traffic report serialization is infallible");
        s.push('\n');
        s
    }
}

impl Serialize for TrafficReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("enabled".to_string(), Value::Bool(self.enabled)),
            ("period_ns".to_string(), Value::Uint(self.period.as_nanos())),
            ("flows_sent".to_string(), Value::Uint(self.flows_sent)),
            (
                "flows_delivered".to_string(),
                Value::Uint(self.flows_delivered),
            ),
            ("flows_lost".to_string(), Value::Uint(self.flows_lost)),
            (
                "flows_rerouted".to_string(),
                Value::Uint(self.flows_rerouted),
            ),
            ("bytes_offered".to_string(), Value::Uint(self.bytes_offered)),
            (
                "bytes_delivered".to_string(),
                Value::Uint(self.bytes_delivered),
            ),
            ("bytes_lost".to_string(), Value::Uint(self.bytes_lost)),
            (
                "incident_count".to_string(),
                Value::Uint(self.incident_count),
            ),
            (
                "links".to_string(),
                Value::Array(self.links.iter().map(Serialize::to_value).collect()),
            ),
            (
                "pairs".to_string(),
                Value::Array(self.pairs.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_report_is_stable() {
        let r = TrafficReport::disabled();
        assert!(!r.enabled);
        assert!(r.to_json().contains("\"enabled\": false"));
        assert!(r.to_json().contains("\"flows_sent\": 0"));
    }
}
