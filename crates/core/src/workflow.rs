//! The Figure 3 validation workflow.
//!
//! "At each step, operators can choose to apply significant changes ...
//! or use existing tools for incremental changes via the management
//! plane. Next, the operators pull the emulation state ... to check
//! whether the changes they made had the intended effect. ... Otherwise,
//! operators revert current update with Reload, fix the bugs and try
//! again. This process repeats until all update steps are validated."

use crate::emulation::Emulation;

/// Applies one planned change to the emulation.
pub type ApplyFn = Box<dyn FnMut(&mut Emulation)>;
/// Checks the expected outcome after convergence. Takes `&mut` because
/// validation probes (`InjectPackets`) record telemetry state.
pub type ExpectFn = Box<dyn FnMut(&mut Emulation) -> Result<(), String>>;

/// One step of an update plan.
pub struct UpdateStep {
    /// Human-readable step name.
    pub name: String,
    /// The change (config push, link operation, tool invocation).
    pub apply: ApplyFn,
    /// The validation check.
    pub expect: ExpectFn,
    /// Optional rollback (`Reload(original)` in the paper's loop).
    pub revert: Option<ApplyFn>,
}

impl UpdateStep {
    /// A step without rollback.
    pub fn new(
        name: impl Into<String>,
        apply: impl FnMut(&mut Emulation) + 'static,
        expect: impl FnMut(&mut Emulation) -> Result<(), String> + 'static,
    ) -> Self {
        UpdateStep {
            name: name.into(),
            apply: Box::new(apply),
            expect: Box::new(expect),
            revert: None,
        }
    }

    /// Attaches a rollback action.
    #[must_use]
    pub fn with_revert(mut self, revert: impl FnMut(&mut Emulation) + 'static) -> Self {
        self.revert = Some(Box::new(revert));
        self
    }
}

/// The outcome of one validated step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// Expected state reached.
    Passed,
    /// Validation failed; `reverted` says whether rollback ran.
    Failed {
        /// Why the expectation failed.
        reason: String,
        /// Whether the step's rollback executed.
        reverted: bool,
    },
    /// Not reached because an earlier step failed.
    Skipped,
}

/// The report of a full validation run.
#[derive(Debug)]
pub struct ValidationReport {
    /// Per-step outcomes in plan order.
    pub steps: Vec<(String, StepOutcome)>,
}

impl ValidationReport {
    /// Whether the whole plan validated.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.steps
            .iter()
            .all(|(_, o)| matches!(o, StepOutcome::Passed))
    }

    /// Names of failed steps.
    #[must_use]
    pub fn failures(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter(|(_, o)| matches!(o, StepOutcome::Failed { .. }))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// A Figure 3 validation loop over an update plan.
#[derive(Default)]
pub struct ValidationLoop {
    steps: Vec<UpdateStep>,
    /// Continue past failures (useful for bug-hunting sweeps); the
    /// operator default is to stop and fix.
    pub continue_on_failure: bool,
}

impl ValidationLoop {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        ValidationLoop::default()
    }

    /// Appends a step.
    #[must_use]
    pub fn step(mut self, step: UpdateStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Runs the plan: apply → converge → check (→ revert on failure).
    pub fn run(mut self, emu: &mut Emulation) -> ValidationReport {
        let mut report = ValidationReport { steps: Vec::new() };
        let mut stop = false;
        for mut step in self.steps.drain(..) {
            if stop {
                report.steps.push((step.name, StepOutcome::Skipped));
                continue;
            }
            (step.apply)(emu);
            let check = match emu.settle() {
                Ok(_) => (step.expect)(emu),
                Err(e) => Err(format!("did not converge after apply: {e}")),
            };
            let outcome = match check {
                Ok(()) => StepOutcome::Passed,
                Err(reason) => {
                    let reverted = if let Some(mut revert) = step.revert {
                        revert(emu);
                        let _ = emu.settle();
                        true
                    } else {
                        false
                    };
                    if !self.continue_on_failure {
                        stop = true;
                    }
                    StepOutcome::Failed { reason, reverted }
                }
            };
            report.steps.push((step.name, outcome));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_queries() {
        let report = ValidationReport {
            steps: vec![
                ("a".into(), StepOutcome::Passed),
                (
                    "b".into(),
                    StepOutcome::Failed {
                        reason: "x".into(),
                        reverted: true,
                    },
                ),
                ("c".into(), StepOutcome::Skipped),
            ],
        };
        assert!(!report.all_passed());
        assert_eq!(report.failures(), vec!["b"]);
    }
}
