//! `explain_route`: the human-readable end of route provenance.
//!
//! The paper's operators debug by asking "why does this device forward
//! this prefix that way?" — in production the answer is scattered across
//! vendor `show` commands on many devices. Here every FIB entry carries
//! an interned `Provenance` chain (who originated the route, which
//! routers re-announced it, under which simulator events) plus the
//! best-path [`DecisionReason`], so the emulation can answer directly.
//! [`crate::Emulation::explain_route`] resolves a hostname + prefix to a
//! [`RouteExplanation`], mapping router loopbacks back to production
//! hostnames along the way.

use crystalnet_net::{DeviceId, Ipv4Addr, Ipv4Prefix};
use crystalnet_routing::{DecisionReason, OriginKind, RouteDetail};
use crystalnet_sim::EventId;
use std::fmt::Write as _;

/// One element of a route's propagation chain: a router that originated
/// or re-announced the route, and the simulator event it did so under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainHop {
    /// The router's loopback / router-id.
    pub router: Ipv4Addr,
    /// The production hostname, when the loopback maps to an emulated
    /// device (speaker stand-ins always do; synthetic origins may not).
    pub hostname: Option<String>,
    /// The event under which this router announced the route.
    /// [`EventId::ZERO`] for announcements made outside event context
    /// (initial scripts applied at boot).
    pub event: EventId,
}

/// The full causal answer to "why does `device` have a route to
/// `prefix`?": origin, propagation chain, and the best-path decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteExplanation {
    /// The device whose FIB entry is being explained.
    pub device: DeviceId,
    /// Its production hostname.
    pub hostname: String,
    /// The explained prefix.
    pub prefix: Ipv4Prefix,
    /// Where the route ultimately came from.
    pub origin_kind: OriginKind,
    /// Why this path won best-path selection on `device`.
    pub reason: DecisionReason,
    /// Content digest of the provenance record — the same value packet
    /// hops carry, so a trace's `prov` field joins against this.
    pub prov_digest: u64,
    /// The propagation chain, origin first. The final holder (`device`
    /// itself) is not repeated.
    pub chain: Vec<ExplainHop>,
    /// The AS path the winning announcement carried (empty for local and
    /// OSPF routes).
    pub as_path: Vec<u32>,
}

impl RouteExplanation {
    /// Builds an explanation from a device's [`RouteDetail`], resolving
    /// router loopbacks to hostnames through `resolve`.
    pub(crate) fn from_detail(
        device: DeviceId,
        hostname: String,
        prefix: Ipv4Prefix,
        detail: &RouteDetail,
        mut resolve: impl FnMut(Ipv4Addr) -> Option<String>,
    ) -> Self {
        let prov = &detail.prov;
        let mut chain = Vec::with_capacity(prov.hops.len() + 1);
        chain.push(ExplainHop {
            router: prov.origin_router,
            hostname: resolve(prov.origin_router),
            event: prov.origin_event,
        });
        chain.extend(prov.hops.iter().map(|h| ExplainHop {
            router: h.router_id,
            hostname: resolve(h.router_id),
            event: h.event,
        }));
        RouteExplanation {
            device,
            hostname,
            prefix,
            origin_kind: detail.prov.origin_kind,
            reason: detail.reason,
            prov_digest: detail.prov.digest(),
            chain,
            as_path: detail.attrs.as_path.iter().map(|asn| asn.0).collect(),
        }
    }

    /// The chain as display names, origin first — hostnames where the
    /// loopback maps to an emulated device, dotted-quad otherwise.
    #[must_use]
    pub fn device_chain(&self) -> Vec<String> {
        self.chain
            .iter()
            .map(|h| h.hostname.clone().unwrap_or_else(|| h.router.to_string()))
            .collect()
    }

    /// A multi-line human-readable rendering, in the spirit of a vendor
    /// `show ip route <prefix>` that actually explains itself.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "route {} on {} ({})",
            self.prefix, self.hostname, self.device
        );
        let _ = writeln!(
            out,
            "  origin: {} (provenance {:#018x})",
            self.origin_kind.label(),
            self.prov_digest
        );
        if !self.as_path.is_empty() {
            let path: Vec<String> = self.as_path.iter().map(u32::to_string).collect();
            let _ = writeln!(out, "  as-path: {}", path.join(" "));
        }
        for (i, hop) in self.chain.iter().enumerate() {
            let role = if i == 0 { "originated by" } else { "via" };
            let name = hop
                .hostname
                .clone()
                .unwrap_or_else(|| hop.router.to_string());
            let _ = writeln!(
                out,
                "  {role} {name} [{}] at event t={}ns #{}",
                hop.router, hop.event.time_ns, hop.event.key
            );
        }
        let _ = writeln!(out, "  selected because: {}", self.reason.label());
        out
    }
}
