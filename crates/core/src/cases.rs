//! The §7 real-life experiences, reproduced end to end.
//!
//! **Case 1 — migration to new regional backbones.** Two datacenters'
//! inter-DC traffic moves from the legacy WAN onto new regional backbone
//! routers. The operators rehearse the staged plan in an emulation of all
//! DC devices + the new backbones + legacy WAN cores; the rehearsal
//! catches injected tool bugs before the plan runs in production, and the
//! perfected plan completes without disruption.
//!
//! **Case 2 — switch OS development pipeline.** A development build of
//! the open-source switch OS (CTNR-B) replaces some production devices in
//! an emulated environment; the validation pipeline catches the build's
//! firmware bugs (default-route FIB sync, ARP trap, flap-crash) that unit
//! and testbed tests missed.

use crate::emulation::{mockup, Emulation, MockupOptions};
use crate::plan::PlanOptions;
use crate::prepare::{prepare, BoundaryMode, SpeakerSource};
use crate::workflow::{StepOutcome, UpdateStep, ValidationLoop};
use crystalnet_dataplane::ForwardDecision;
use crystalnet_net::{DeviceId, RegionParams, RegionTopology, Role};
use crystalnet_routing::{DeviceOs, Frame, MgmtCommand, OsEvent, VendorProfile};
use crystalnet_sim::SimTime;
use crystalnet_telemetry::RunReport;
use std::sync::Arc;

/// The report of the Case-1 rehearsal.
#[derive(Debug)]
pub struct Case1Report {
    /// Step outcomes of the *first* rehearsal (with the buggy tool).
    pub rehearsal: Vec<(String, StepOutcome)>,
    /// Bugs the rehearsal caught (would-be production incidents).
    pub bugs_caught: usize,
    /// Step outcomes of the final, perfected plan.
    pub final_run: Vec<(String, StepOutcome)>,
    /// Whether the perfected plan completed without any disruption.
    pub no_disruption: bool,
    /// VM count of the emulation.
    pub vms_used: usize,
    /// Run report of the final migration emulation.
    pub report: RunReport,
    /// Traffic-plane gauges of the final run
    /// ([`disabled`](crate::traffic::TrafficReport::disabled) unless the
    /// rehearsal ran under load — see [`run_case1_under_load`]).
    pub traffic: crate::traffic::TrafficReport,
    /// Correlated incidents observed during the final run (health and
    /// congestion watchdogs; empty when both planes are off).
    pub incidents: usize,
}

/// Builds the Case-1 emulation: both DCs fully emulated plus regional
/// backbones and legacy WAN cores (the paper emulated all spines of two
/// DCs + the new backbone + several WAN cores on 150 VMs).
fn case1_emulation(options: &MockupOptions, region: &RegionTopology) -> Emulation {
    let prep = prepare(
        &region.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    mockup(Arc::new(prep), options.clone())
}

/// A cross-DC reachability check: a ToR in DC0 can reach a ToR subnet in
/// DC1 and the path crosses the expected layer.
fn cross_dc_ok(
    emu: &mut Emulation,
    region: &RegionTopology,
    expect_via: Role,
) -> Result<(), String> {
    let src_tor = region.dcs[0].tors[0];
    let dst_tor = region.dcs[1].tors[0];
    let src = emu.topo.device(src_tor).originated[1].nth(3);
    let dst = emu.topo.device(dst_tor).originated[1].nth(3);
    let sig = emu.inject_packet(src_tor, src, dst);
    let (path, outcome) = emu
        .pull_packets(sig)
        .map_err(|e| format!("cross-DC probe failed: {e}"))?;
    if outcome != ForwardDecision::Deliver {
        return Err(format!("cross-DC probe failed: {outcome:?}"));
    }
    let via_ok = path.iter().any(|&d| emu.topo.device(d).role == expect_via);
    if !via_ok {
        return Err(format!("probe avoided the {expect_via} layer: {path:?}"));
    }
    Ok(())
}

/// Runs the Case-1 migration rehearsal with the default options.
#[must_use]
pub fn run_case1(seed: u64) -> Case1Report {
    run_case1_with(&MockupOptions::builder().seed(seed).build())
}

/// Runs the Case-1 migration rehearsal *under load*: the probe mesh and
/// the traffic plane both run while the staged plan executes, so the
/// report shows what the migration transient did to user flows (lost,
/// rerouted) and whether any congestion watchdog fired — the paper's
/// end goal, not just FIB equivalence. Deterministic for a given seed
/// like every other run.
#[must_use]
pub fn run_case1_under_load(seed: u64) -> Case1Report {
    run_case1_with(
        &MockupOptions::builder()
            .seed(seed)
            .health(crystalnet_sim::SimDuration::from_secs(5))
            .traffic(crystalnet_sim::SimDuration::from_secs(5))
            .build(),
    )
}

/// Runs the Case-1 migration rehearsal under caller-supplied mockup
/// options (the final run re-derives its seed as `seed + 1000`).
#[must_use]
pub fn run_case1_with(options: &MockupOptions) -> Case1Report {
    let mut params = RegionParams::case1();
    // Keep the rehearsal affordable: small DCs, post-migration topology
    // (backbone links exist; the plan brings them into service).
    params.dc = crystalnet_net::ClosParams::s_dc();
    params.backbone_connected = true;
    let region = params.build();

    // ------------------------------------------------------------------
    // Rehearsal 1: the operators' tools still contain a bug — the traffic
    // shift step shuts down a whole border router instead of its WAN
    // sessions (the §2 tool-bug class).
    // ------------------------------------------------------------------
    let mut emu = case1_emulation(options, &region);
    let border0 = region.dcs[0].borders[0];
    let r1 = region.clone();
    let r2 = region.clone();
    let rehearsal = ValidationLoop::new()
        .step(UpdateStep::new(
            "baseline: inter-DC traffic rides the legacy WAN",
            |_| {},
            move |emu: &mut Emulation| cross_dc_ok(emu, &r1, Role::WanCore),
        ))
        .step(
            UpdateStep::new(
                "shift DC0 border0 off the WAN (buggy tool)",
                move |emu| {
                    // BUG: the tool powers the router down entirely.
                    emu.sim.mgmt_sync(border0, MgmtCommand::DeviceShutdown);
                },
                move |emu: &mut Emulation| {
                    if !emu.sim.is_up(border0) {
                        return Err("border0 is down — tool shut the router, not sessions".into());
                    }
                    cross_dc_ok(emu, &r2, Role::WanCore)
                },
            )
            .with_revert(move |emu| {
                // Reload(original) brings the router back.
                if let Some((_, cfg)) = emu.prep.configs.iter().find(|(d, _)| *d == border0) {
                    let cfg = cfg.clone();
                    let profile = VendorProfile::for_vendor(emu.topo.device(border0).vendor);
                    let os = crystalnet_routing::BgpRouterOs::new(
                        profile,
                        cfg,
                        emu.topo.device(border0).loopback,
                    );
                    emu.sim.replace_os(border0, Box::new(os));
                    let at = emu.now();
                    emu.sim.boot_device(border0, at);
                }
            }),
        )
        .run(&mut emu);
    let bugs_caught = rehearsal
        .steps
        .iter()
        .filter(|(_, o)| matches!(o, StepOutcome::Failed { .. }))
        .count();

    // ------------------------------------------------------------------
    // Final run: the fixed tool shuts down individual WAN sessions, per
    // border, verifying traffic shifts onto the regional backbone with
    // no disruption.
    // ------------------------------------------------------------------
    let mut final_options = options.clone();
    final_options.seed += 1000;
    let mut emu = case1_emulation(&final_options, &region);
    let mut wan_sessions: Vec<(DeviceId, crystalnet_net::Ipv4Addr)> = Vec::new();
    for dc in &region.dcs {
        for &b in &dc.borders {
            for (_, _, remote) in region.topo.neighbors(b) {
                let peer_dev = region.topo.device(remote.device);
                if peer_dev.role == Role::WanCore {
                    let peer = peer_dev.ifaces[remote.iface as usize].addr.unwrap().addr;
                    wan_sessions.push((b, peer));
                }
            }
        }
    }
    let r3 = region.clone();
    let r4 = region.clone();
    let final_run = ValidationLoop::new()
        .step(UpdateStep::new(
            "baseline reachability",
            |_| {},
            move |emu: &mut Emulation| cross_dc_ok(emu, &r3, Role::WanCore),
        ))
        .step(UpdateStep::new(
            "drain all border→WAN sessions (fixed tool)",
            move |emu| {
                for (b, peer) in &wan_sessions {
                    emu.sim.mgmt_sync(*b, MgmtCommand::NeighborShutdown(*peer));
                }
            },
            move |emu: &mut Emulation| cross_dc_ok(emu, &r4, Role::Regional),
        ))
        .run(&mut emu);
    let no_disruption = final_run
        .steps
        .iter()
        .all(|(_, o)| *o == StepOutcome::Passed);
    let vms_used = emu.prep.vm_plan.vm_count();

    let traffic = emu.pull_traffic();
    let incidents = emu.incidents().len();
    Case1Report {
        rehearsal: rehearsal.steps,
        bugs_caught,
        final_run: final_run.steps,
        no_disruption,
        vms_used,
        report: emu.pull_report(),
        traffic,
        incidents,
    }
}

/// The report of the Case-2 validation pipeline.
#[derive(Debug)]
pub struct Case2Report {
    /// Bugs the pipeline caught in the dev build, by check name.
    pub bugs: Vec<String>,
    /// The same checks against the released build (expected clean).
    pub control_clean: bool,
    /// Run report of the dev-build emulation under test.
    pub report: RunReport,
}

/// Runs the Case-2 switch-OS validation pipeline with the default
/// options: replace one production ToR with the CTNR-B dev build, verify
/// no behaviour change.
#[must_use]
pub fn run_case2(seed: u64) -> Case2Report {
    run_case2_with(&MockupOptions::builder().seed(seed).build())
}

/// Runs the Case-2 pipeline under caller-supplied mockup options (the
/// control run re-derives its seed as `seed + 500`).
#[must_use]
pub fn run_case2_with(options: &MockupOptions) -> Case2Report {
    let mut control_options = options.clone();
    control_options.seed += 500;
    let (bugs, report) = pipeline(options, VendorProfile::ctnr_b_dev());
    let (control, _) = pipeline(&control_options, VendorProfile::ctnr_b());
    Case2Report {
        control_clean: control.is_empty(),
        bugs,
        report,
    }
}

fn pipeline(options: &MockupOptions, build: VendorProfile) -> (Vec<String>, RunReport) {
    let f = crystalnet_net::fixtures::fig7();
    let dut = f.tors[0]; // device under test
    let mut prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    // L1 originates a default route so the DUT must program one.
    for (dev, cfg) in &mut prep.configs {
        if *dev == f.leaves[0] {
            cfg.bgp
                .as_mut()
                .unwrap()
                .networks
                .push("0.0.0.0/0".parse().unwrap());
        }
    }
    let mut options = options.clone();
    options.profile_overrides.insert(dut, build);
    let mut emu = mockup(Arc::new(prep), options);

    let mut bugs = Vec::new();

    // Check 1: the ASIC must hold the BGP-learned default route.
    let default_ok = emu
        .sim
        .fib(dut)
        .is_some_and(|fib| fib.get("0.0.0.0/0".parse().unwrap()).is_some());
    if !default_ok {
        bugs.push("default route missing from ASIC FIB after BGP learn".into());
    }

    // Check 2: the DUT must answer ARP for its interface addresses.
    let now = emu.now();
    let target_ip = emu.topo.device(dut).ifaces[0].addr.unwrap().addr;
    let request = Frame::Arp(crystalnet_dataplane::ArpMessage {
        is_request: true,
        sender_ip: "10.7.0.99".parse().unwrap(),
        sender_mac: crystalnet_net::MacAddr::from_id(99),
        target_ip,
    });
    let replied = emu
        .sim
        .os_mut(dut)
        .map(|os| {
            let actions = os.handle(
                now,
                OsEvent::Frame {
                    iface: 0,
                    frame: request,
                },
            );
            actions
                .out
                .iter()
                .any(|(_, f)| matches!(f, Frame::Arp(reply) if !reply.is_request))
        })
        .unwrap_or(false);
    if !replied {
        bugs.push("ARP request not forwarded to CPU (no reply)".into());
    }

    // Check 3: session flap endurance — three uplink flaps must not
    // crash the OS.
    let (lid, _, _) = f.topo.neighbors(dut).next().unwrap();
    let mut t = emu.now();
    for _ in 0..3 {
        t += crystalnet_sim::SimDuration::from_secs(30);
        emu.disconnect_at(lid, t);
        t += crystalnet_sim::SimDuration::from_secs(30);
        emu.connect_at(lid, t);
        let _ = emu.settle();
    }
    if emu.sim.os(dut).is_some_and(DeviceOs::is_down) {
        bugs.push("OS crashed after repeated BGP session flaps".into());
    }

    (bugs, emu.pull_report())
}

/// Internal scheduling helpers used by the pipeline.
impl Emulation {
    /// Disconnects a link at an explicit future instant.
    pub fn disconnect_at(&mut self, lid: crystalnet_net::LinkId, at: SimTime) {
        let ep = crystalnet_routing::ControlPlaneSim::link_endpoints(&self.topo, lid);
        self.sim.link_down(ep, at);
    }

    /// Connects a link at an explicit future instant.
    pub fn connect_at(&mut self, lid: crystalnet_net::LinkId, at: SimTime) {
        let ep = crystalnet_routing::ControlPlaneSim::link_endpoints(&self.topo, lid);
        self.sim.link_up(ep, at);
    }
}
