//! `Mockup` and the running emulation: the heart of CrystalNet.
//!
//! [`mockup`] turns a [`PrepareOutput`] into a live [`Emulation`]:
//!
//! 1. **Network-ready phase** — on every VM (in parallel), start PhyNet
//!    containers, create virtual interfaces, and wire veth/bridge/VXLAN
//!    links plus the management overlay. All of this is CPU work queued
//!    on the VM's cores; the phase ends when the slowest VM drains.
//! 2. **Route-ready phase** — boot the device firmwares (vendor-specific
//!    boot latency on top of VM CPU contention), let BGP converge, and
//!    detect quiescence. This phase dominates Mockup (§8.2) and depends
//!    on VM packing density, which is exactly what Figure 8's VM-count
//!    sweep shows.
//!
//! The returned [`Emulation`] exposes the Table 2 control/monitor surface:
//! `Reload` (two-layer vs strawman, §8.3), `Connect`/`Disconnect`,
//! `InjectPackets`/`PullPackets` telemetry, `PullStates`/`PullConfig`,
//! VM failure injection and health-monitor recovery.

use crate::explain::RouteExplanation;
use crate::faults::{FaultPlan, HealthPolicy};
use crate::metrics::{JournalEvent, JournalKind, MockupMetrics, RecoveryJournal};
use crate::plan::sandbox_kind;
use crate::prepare::PrepareOutput;
use bytes::Bytes;
use crystalnet_config::DeviceConfig;
use crystalnet_dataplane::{
    FibEntry,
    ForwardDecision,
    Ipv4Packet,
    NextHop,
    Signature,
    TraceEvent,
    TraceStore, //
};
use crystalnet_net::{partition_grouped, DeviceId, Ipv4Addr, Ipv4Prefix, LinkId, Topology};
use crystalnet_routing::harness::{WorkKind, WorkModel};
use crystalnet_routing::{
    BgpRouterOs, ControlPlaneSim, MgmtCommand, MgmtResponse, ProbeConfig, TrafficConfig,
    VendorProfile,
};
use crystalnet_sim::{EventId, SimDuration, SimRng, SimTime};
use crystalnet_telemetry::profile::keys as profile_keys;
use crystalnet_telemetry::{
    trace_chrome_json, trace_jsonl, CowStats, DeviceMem, DeviceMemTotals, FieldValue, InternerMem,
    MemRecorder, MemorySection, QueueMem, Recorder, RunReport, SpanRecord, TraceRecord,
};
use crystalnet_vnet::{
    BridgeImpl,
    Cloud,
    CloudParams,
    ContainerEngine,
    ContainerId,
    ContainerKind,
    LinkSpan,
    ManagementOverlay,
    VirtualLink,
    VmId,
    VniAllocator, //
};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A typed failure from the [`Emulation`] control/monitor surface.
///
/// The Table 2 calls used to answer with bare `Option`s, which collapsed
/// "no such device" and "device mid-recovery" into one indistinguishable
/// `None`. Each variant now names its cause, so callers (validation
/// loops, retry harnesses) can react differently to transient and
/// permanent failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmulationError {
    /// The name/id does not resolve to an emulated device.
    UnknownDevice(String),
    /// The VM index is outside the provisioned fleet.
    UnknownVm(usize),
    /// The production link id is not part of this emulation.
    UnknownLink(u32),
    /// The device exists but is mid-recovery (reload or fault handling);
    /// retry after the next `settle`.
    DeviceRecovering(String),
    /// The device's hosting VM is dead (quarantined without recovery).
    VmDown(usize),
    /// Route convergence did not complete before the deadline.
    NotConverged,
    /// No packet trace recorded under this telemetry signature.
    UnknownSignature(u16),
    /// The device resolved but did not answer the management command
    /// (powered off or shut down).
    DeviceUnresponsive(String),
    /// The device holds no FIB entry for the asked prefix, so there is
    /// nothing to explain.
    NoRoute {
        /// Hostname of the queried device.
        device: String,
        /// The prefix that has no installed route.
        prefix: Ipv4Prefix,
    },
    /// A [`MockupOptions`] knob was given a value that cannot work
    /// (zero probe period, zero trace capacity). Raised eagerly by
    /// [`MockupOptionsBuilder::try_build`] so misconfiguration fails at
    /// build time instead of silently misbehaving mid-run.
    InvalidOption(String),
}

impl std::fmt::Display for EmulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmulationError::UnknownDevice(name) => write!(f, "unknown device {name:?}"),
            EmulationError::UnknownVm(vm) => write!(f, "VM index {vm} out of range"),
            EmulationError::UnknownLink(lid) => write!(f, "link #{lid} is not emulated"),
            EmulationError::DeviceRecovering(name) => {
                write!(f, "device {name:?} is recovering; retry after settle")
            }
            EmulationError::VmDown(vm) => write!(f, "VM {vm} is down"),
            EmulationError::NotConverged => write!(f, "did not converge before the deadline"),
            EmulationError::UnknownSignature(sig) => {
                write!(f, "no trace under signature {sig}")
            }
            EmulationError::DeviceUnresponsive(name) => {
                write!(f, "device {name:?} did not respond")
            }
            EmulationError::NoRoute { device, prefix } => {
                write!(f, "device {device:?} has no route to {prefix}")
            }
            EmulationError::InvalidOption(what) => {
                write!(f, "invalid mockup option: {what}")
            }
        }
    }
}

impl std::error::Error for EmulationError {}

/// Options controlling a Mockup.
///
/// Construct with [`MockupOptions::builder`]; `Default` gives the paper's
/// baseline. Direct struct-literal construction still compiles for
/// backward compatibility but is deprecated in favour of the builder —
/// new options (fault plans, health policy) will keep appearing and the
/// builder insulates call sites from them.
#[derive(Clone)]
pub struct MockupOptions {
    /// Run seed (boot jitter, provisioning jitter).
    pub seed: u64,
    /// Bridge implementation for virtual links (§6.2 ablation).
    pub bridge: BridgeImpl,
    /// Route quiescence window for convergence detection.
    pub quiet: SimDuration,
    /// Convergence deadline.
    pub deadline: SimDuration,
    /// Per-device firmware profile overrides (dev builds, buggy images).
    pub profile_overrides: HashMap<DeviceId, VendorProfile>,
    /// Worker shards for the convergence runs (`1` = serial). Any value
    /// produces bit-identical results: the partition is VM-aligned so a
    /// VM's CPU server is only ever driven by one worker thread, and all
    /// stochastic work costs derive from per-device seeds rather than a
    /// shared sequential stream.
    pub workers: usize,
    /// Faults to inject once the mockup is route-ready (offsets are
    /// relative to that instant). Executed automatically by [`mockup`];
    /// empty by default.
    pub fault_plan: FaultPlan,
    /// Health-monitor policy: heartbeat interval, miss threshold, and the
    /// bounded reboot-retry backoff.
    pub health: HealthPolicy,
    /// Continuous health plane: a deterministic probe mesh running in
    /// virtual time with gray-failure watchdogs and an incident
    /// timeline (see [`crate::health`]). `None` (the default) keeps
    /// every probe code path dormant — runs are byte-identical to a
    /// build without the feature.
    pub health_probes: Option<ProbeConfig>,
    /// Deterministic traffic plane: seeded flow generation over the
    /// converged dataplane with per-link utilisation gauges and
    /// congestion watchdogs (see [`crate::traffic`]). `None` (the
    /// default) keeps every traffic code path dormant — runs are
    /// byte-identical to a build without the feature.
    pub traffic: Option<TrafficConfig>,
    /// Whether to collect the run report (spans, counters, journal) —
    /// `pull_report()` returns an empty report when off. Recording is
    /// deterministic and does not perturb the run; disable it only to
    /// shave the last few percent off large batch sweeps.
    pub telemetry: bool,
    /// Maximum causal-trace records retained (a ring buffer keeping the
    /// newest); drops are counted in the run report under
    /// `telemetry.trace_dropped`. Must be nonzero (enforced by
    /// [`MockupOptionsBuilder::try_build`]); to run without telemetry
    /// at all, clear [`MockupOptions::telemetry`] instead.
    pub trace_capacity: usize,
    /// Whether to collect the wall-clock run profile: hierarchical
    /// span timings, the parallel executor's grant timeline and
    /// critical-path `scaling_diagnosis`, and memory accounting —
    /// surfaced through `RunReport::to_json_full()`. Off by default:
    /// wall timing is nondeterministic and the canonical report must
    /// stay byte-stable. Implies `telemetry`.
    pub profiling: bool,
}

impl Default for MockupOptions {
    fn default() -> Self {
        MockupOptions {
            seed: 0,
            bridge: BridgeImpl::LinuxBridge,
            quiet: SimDuration::from_secs(45),
            deadline: SimDuration::from_mins(180),
            profile_overrides: HashMap::new(),
            workers: 1,
            fault_plan: FaultPlan::default(),
            health: HealthPolicy::default(),
            health_probes: None,
            traffic: None,
            telemetry: true,
            trace_capacity: 65_536,
            profiling: false,
        }
    }
}

impl MockupOptions {
    /// Starts a builder from the defaults.
    ///
    /// # Examples
    ///
    /// ```
    /// use crystalnet::prelude::*;
    ///
    /// let opts = MockupOptions::builder()
    ///     .seed(7)
    ///     .workers(4)
    ///     .quiet(SimDuration::from_secs(30))
    ///     .build();
    /// assert_eq!(opts.seed, 7);
    /// assert_eq!(opts.workers, 4);
    /// ```
    #[must_use]
    pub fn builder() -> MockupOptionsBuilder {
        MockupOptionsBuilder {
            options: MockupOptions::default(),
        }
    }
}

/// Builder for [`MockupOptions`] — the supported construction path.
#[derive(Clone, Default)]
pub struct MockupOptionsBuilder {
    options: MockupOptions,
}

impl MockupOptionsBuilder {
    /// Run seed (boot jitter, provisioning jitter).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Worker shards for convergence runs (`1` = serial).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.options.workers = workers;
        self
    }

    /// Bridge implementation for virtual links.
    #[must_use]
    pub fn bridge(mut self, bridge: BridgeImpl) -> Self {
        self.options.bridge = bridge;
        self
    }

    /// Route quiescence window for convergence detection.
    #[must_use]
    pub fn quiet(mut self, quiet: SimDuration) -> Self {
        self.options.quiet = quiet;
        self
    }

    /// Convergence deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        self.options.deadline = deadline;
        self
    }

    /// Overrides one device's firmware profile (dev builds, buggy
    /// images). May be called repeatedly.
    #[must_use]
    pub fn profile_override(mut self, dev: DeviceId, profile: VendorProfile) -> Self {
        self.options.profile_overrides.insert(dev, profile);
        self
    }

    /// Faults to inject once route-ready (offsets relative to that
    /// instant).
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.options.fault_plan = plan;
        self
    }

    /// Health-monitor heartbeat interval.
    #[must_use]
    pub fn heartbeat(mut self, interval: SimDuration) -> Self {
        self.options.health.heartbeat = interval;
        self
    }

    /// Full health-monitor policy (heartbeat, miss threshold, retry).
    #[must_use]
    pub fn health_policy(mut self, health: HealthPolicy) -> Self {
        self.options.health = health;
        self
    }

    /// Turns the continuous health plane on with `period` between probe
    /// rounds and every other [`ProbeConfig`] knob at its default. Use
    /// [`Self::health_config`] for full control. The period must be
    /// nonzero — [`Self::try_build`] rejects zero with
    /// [`EmulationError::InvalidOption`].
    #[must_use]
    pub fn health(mut self, period: SimDuration) -> Self {
        self.options.health_probes = Some(ProbeConfig::with_period(period));
        self
    }

    /// Turns the continuous health plane on with a full [`ProbeConfig`]
    /// (sampling width, SLO window, churn threshold, probe seed).
    #[must_use]
    pub fn health_config(mut self, cfg: ProbeConfig) -> Self {
        self.options.health_probes = Some(cfg);
        self
    }

    /// Turns the traffic plane on with `period` between flow-generation
    /// rounds and every other [`TrafficConfig`] knob at its default. Use
    /// [`Self::traffic_config`] for full control. The period must be
    /// nonzero — [`Self::try_build`] rejects zero with
    /// [`EmulationError::InvalidOption`].
    #[must_use]
    pub fn traffic(mut self, period: SimDuration) -> Self {
        self.options.traffic = Some(TrafficConfig::with_period(period));
        self
    }

    /// Turns the traffic plane on with a full [`TrafficConfig`] (flows
    /// per round, request/response sizes, link capacity, congestion
    /// thresholds, traffic seed).
    #[must_use]
    pub fn traffic_config(mut self, cfg: TrafficConfig) -> Self {
        self.options.traffic = Some(cfg);
        self
    }

    /// Whether to collect the run report (on by default).
    #[must_use]
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.options.telemetry = telemetry;
        self
    }

    /// Caps retained causal-trace records. Must be nonzero —
    /// [`Self::try_build`] rejects `0` with
    /// [`EmulationError::InvalidOption`]; to run without any telemetry
    /// use [`Self::telemetry`]`(false)` instead.
    #[must_use]
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.options.trace_capacity = capacity;
        self
    }

    /// Whether to collect the wall-clock run profile (off by default;
    /// see [`MockupOptions::profiling`]).
    #[must_use]
    pub fn profiling(mut self, profiling: bool) -> Self {
        self.options.profiling = profiling;
        self
    }

    /// Finishes the build, validating every knob eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError::InvalidOption`] when a knob holds a
    /// value that cannot work: a zero health-probe period (the probe
    /// tick would never advance virtual time) or a zero trace capacity
    /// (telemetry on but nowhere to put trace records).
    pub fn try_build(self) -> Result<MockupOptions, EmulationError> {
        if let Some(cfg) = &self.options.health_probes {
            if cfg.period == SimDuration::ZERO {
                return Err(EmulationError::InvalidOption(
                    "health probe period must be nonzero".to_string(),
                ));
            }
            if cfg.ttl == 0 {
                return Err(EmulationError::InvalidOption(
                    "health probe ttl must be nonzero".to_string(),
                ));
            }
        }
        if let Some(cfg) = &self.options.traffic {
            if cfg.period == SimDuration::ZERO {
                return Err(EmulationError::InvalidOption(
                    "traffic period must be nonzero".to_string(),
                ));
            }
            if cfg.ttl == 0 {
                return Err(EmulationError::InvalidOption(
                    "traffic flow ttl must be nonzero".to_string(),
                ));
            }
            if cfg.flows_per_round == 0 {
                return Err(EmulationError::InvalidOption(
                    "traffic flows_per_round must be nonzero".to_string(),
                ));
            }
            if cfg.link_capacity_bps == 0 {
                return Err(EmulationError::InvalidOption(
                    "traffic link_capacity_bps must be nonzero".to_string(),
                ));
            }
        }
        if self.options.trace_capacity == 0 {
            return Err(EmulationError::InvalidOption(
                "trace_capacity must be nonzero; disable telemetry instead".to_string(),
            ));
        }
        Ok(self.options)
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics on an invalid knob combination — see [`Self::try_build`]
    /// for the fallible variant with a typed error.
    #[must_use]
    pub fn build(self) -> MockupOptions {
        self.try_build().expect("invalid mockup options")
    }
}

/// The work model coupling device activity to VM CPU contention.
///
/// Every route operation, firmware boot and frame encap queues on the
/// hosting VM's 4 cores — so denser packing (fewer VMs) slows convergence
/// and raises utilization, reproducing the Figure 8/9 relationships.
#[derive(Clone)]
pub struct VmWorkModel {
    cloud: Arc<Mutex<Cloud>>,
    device_vm: HashMap<DeviceId, VmId>,
    /// Per-device (boot CPU, firmware boot latency, CPU per route op).
    device_cost: HashMap<DeviceId, (SimDuration, SimDuration, SimDuration)>,
    /// Route processing inside one firmware image is single-threaded —
    /// a device's work serializes behind itself before competing for the
    /// VM's cores. This is what makes route-ready scale with fabric
    /// fan-in (the paper's L-DC bottleneck: "the major bottleneck is the
    /// convergence speed of routing algorithms", §8.2).
    device_busy: HashMap<DeviceId, SimTime>,
    link_span: HashMap<LinkId, LinkSpan>,
    /// Seed for boot-latency jitter. Jitter is derived from
    /// `(seed, device, boot ordinal)` rather than drawn from a shared
    /// sequential stream, so event interleaving — and therefore parallel
    /// execution — cannot change any device's boot time.
    jitter_seed: u64,
    /// Per-device boot ordinal; a reboot draws fresh jitter.
    boot_seq: HashMap<DeviceId, u64>,
}

impl VmWorkModel {
    /// ±25 % boot-latency jitter, deterministic per (device, boot ordinal).
    fn boot_jitter(&mut self, dev: DeviceId, base: SimDuration) -> SimDuration {
        let seq = self.boot_seq.entry(dev).or_insert(0);
        *seq += 1;
        // splitmix64 finalizer over the (seed, device, ordinal) triple.
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(dev.0).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(seq.wrapping_mul(0xd1b5_4a32_d192_ed03));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        base.mul_f64(0.75 + 0.5 * unit)
    }

    /// Re-homes a device onto another VM (quarantine re-placement): its
    /// future boot/route work queues on the spare's CPU server.
    pub(crate) fn rehome_device(&mut self, dev: DeviceId, vm: VmId) {
        self.device_vm.insert(dev, vm);
    }

    /// Updates a link's span after re-placement changed which VMs host
    /// its endpoints (intra-VM veth ↔ inter-VM VXLAN).
    pub(crate) fn set_link_span(&mut self, link: LinkId, span: LinkSpan) {
        self.link_span.insert(link, span);
    }

    /// Folds a shard replica's per-device mutations back after a parallel
    /// join. The cloud is shared by `Arc`, so only the device-local
    /// tables need merging.
    fn absorb(&mut self, shard: &VmWorkModel, owned: &[DeviceId]) {
        for &dev in owned {
            if let Some(&t) = shard.device_busy.get(&dev) {
                self.device_busy.insert(dev, t);
            }
            if let Some(&s) = shard.boot_seq.get(&dev) {
                self.boot_seq.insert(dev, s);
            }
        }
    }
}

impl WorkModel for VmWorkModel {
    fn completion(&mut self, dev: DeviceId, kind: WorkKind, now: SimTime) -> SimTime {
        let Some(&vm) = self.device_vm.get(&dev) else {
            return now;
        };
        let (boot_cpu, boot_latency, per_op) = self.device_cost[&dev];
        let jitter = match kind {
            WorkKind::Boot => self.boot_jitter(dev, boot_latency),
            WorkKind::RouteOps(_) => SimDuration::ZERO,
        };
        let mut cloud = self.cloud.lock().expect("cloud lock poisoned");
        let start = now.max(self.device_busy.get(&dev).copied().unwrap_or(SimTime::ZERO));
        let end = match kind {
            WorkKind::Boot => cloud.vm_mut(vm).cpu.submit(start, boot_cpu) + jitter,
            WorkKind::RouteOps(n) => cloud.vm_mut(vm).cpu.submit(start, per_op * (n as u64)),
        };
        self.device_busy.insert(dev, end);
        end
    }

    fn link_delay(&mut self, link: LinkId, now: SimTime) -> SimDuration {
        let span = self
            .link_span
            .get(&link)
            .copied()
            .unwrap_or(LinkSpan::IntraVm);
        // A per-link-constant jitter de-phases the thousands of identical
        // links without breaking a link's FIFO ordering (reordering a
        // link would let an Update overtake its session's Open, which no
        // real Ethernet link does).
        let _ = now;
        let jitter = u64::from(link.0).wrapping_mul(0x9e37_79b9) % 2_000;
        span.latency() + SimDuration::from_nanos(jitter)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// One device's sandbox wiring on its VM.
#[derive(Debug, Clone, Copy)]
pub struct Sandbox {
    /// VM index in the plan.
    pub vm: usize,
    /// The PhyNet (namespace-holding) container.
    pub phynet: ContainerId,
    /// The device-software container (or speaker agent).
    pub device: ContainerId,
}

/// A running emulation.
pub struct Emulation {
    /// The production topology being emulated.
    pub topo: Topology,
    /// The control-plane simulation (devices, links, virtual time).
    pub sim: ControlPlaneSim,
    /// The cloud fleet.
    pub cloud: Arc<Mutex<Cloud>>,
    /// Provisioned VM handles, indexed like the plan.
    pub vm_ids: Vec<VmId>,
    /// Per-VM container engines.
    pub engines: Vec<ContainerEngine>,
    /// Per-device sandbox wiring.
    pub sandboxes: HashMap<DeviceId, Sandbox>,
    /// Provisioned virtual links.
    pub vlinks: Vec<VirtualLink>,
    /// The management overlay (jumpbox, DNS).
    pub mgmt: ManagementOverlay,
    /// Bring-up metrics.
    pub metrics: MockupMetrics,
    /// Captured packet traces.
    pub traces: TraceStore,
    /// The prepare artifact this emulation was built from. Shared by
    /// `Arc` so forks reference the same immutable artifact and the
    /// whole emulation stays `Send` (forks can run on worker threads).
    pub prep: Arc<PrepareOutput>,
    /// Structured record of every fault handled and recovery performed.
    pub journal: RecoveryJournal,
    /// Per-VM liveness as the health monitor sees it (`true` = declared
    /// dead and not yet restored).
    pub(crate) vm_down: Vec<bool>,
    /// Devices mid-recovery: control/monitor calls answer
    /// [`EmulationError::DeviceRecovering`] until this instant passes.
    pub(crate) recovering_until: HashMap<DeviceId, SimTime>,
    /// Speaker incarnation epochs; bumped on every speaker restart so the
    /// fresh session token forces peers to flush and resync.
    pub(crate) speaker_epochs: HashMap<DeviceId, u64>,
    /// VNI allocator, retained so quarantine re-placement can provision
    /// replacement VXLAN tunnels without clashing with bring-up VNIs.
    pub(crate) vnis: VniAllocator,
    pub(crate) options: MockupOptions,
    /// Running configurations applied after `Prepare` (via
    /// [`Emulation::reload`] or `apply_change`); consulted before
    /// `prep.configs` so `pull_config` and fault recovery always see the
    /// *effective* config, not the original snapshot.
    pub(crate) config_overrides: HashMap<DeviceId, DeviceConfig>,
    /// Speaker scripts swapped in by `apply_change`; fault recovery
    /// rebuilds a swapped speaker from these, not the prepared plan.
    pub(crate) speaker_overrides: HashMap<DeviceId, Vec<(u32, crystalnet_routing::SpeakerScript)>>,
    /// Memoized boundary classification, patched incrementally on device
    /// removal instead of re-running Algorithm 1.
    pub(crate) classification: crystalnet_boundary::Classification,
    /// The *current* emulated set — `prep.emulated` minus devices removed
    /// by `apply_change`.
    pub(crate) emulated_now: BTreeSet<DeviceId>,
    /// Change applications in virtual-time order, kept for incident
    /// correlation (`(applied_at, summary)` per `apply_change`).
    pub(crate) change_log: Vec<(SimTime, String)>,
    next_signature: u16,
}

/// Builds and converges an emulation from a prepare artifact.
///
/// # Panics
///
/// Panics if the emulation fails to converge within `options.deadline` —
/// a deliberate loud failure, since every §8 experiment depends on
/// convergence.
#[must_use]
pub fn mockup(prep: Arc<PrepareOutput>, options: MockupOptions) -> Emulation {
    let t_mockup = options.profiling.then(Instant::now);
    let topo = prep.topo.clone();
    let plan = &prep.vm_plan;

    // VMs were spawned during Prepare; they are running at t = 0.
    let mut cloud = Cloud::new(CloudParams::default(), options.seed);
    let mut vm_ids = Vec::with_capacity(plan.vms.len());
    for planned in &plan.vms {
        let (id, _) = cloud.provision(planned.sku, SimTime::ZERO);
        cloud.mark_running(id, SimTime::ZERO);
        vm_ids.push(id);
    }
    let cloud = Arc::new(Mutex::new(cloud));

    // ------------------------------------------------------------------
    // Phase 1: PhyNet containers, interfaces, links, management overlay.
    // ------------------------------------------------------------------
    let mut engines: Vec<ContainerEngine> = (0..plan.vms.len())
        .map(|_| ContainerEngine::new())
        .collect();
    let mut sandboxes = HashMap::new();
    let mut mgmt = ManagementOverlay::new();
    let mut rng = SimRng::for_component(options.seed, "mockup");

    {
        let mut cloud = cloud.lock().expect("cloud lock poisoned");
        for (vm_idx, planned) in plan.vms.iter().enumerate() {
            mgmt.attach_vm(vm_ids[vm_idx]);
            for &dev in planned.devices.iter().chain(&planned.speakers) {
                let device = topo.device(dev);
                let engine = &mut engines[vm_idx];
                let phynet = engine.create(ContainerKind::PhyNet, None);
                let kind = if planned.speakers.contains(&dev) {
                    ContainerKind::Speaker
                } else {
                    sandbox_kind(device.vendor)
                };
                let sandbox = engine.create(kind, Some(phynet));
                engine.add_ifaces(phynet, device.ifaces.len() as u32);
                engine.start(phynet);
                let vm = &mut cloud.vm_mut(vm_ids[vm_idx]);
                // PhyNet start + per-interface veth/bridge setup.
                vm.cpu
                    .submit(SimTime::ZERO, ContainerKind::PhyNet.start_cpu());
                for _ in 0..device.ifaces.len() {
                    vm.cpu.submit(SimTime::ZERO, options.bridge.setup_cpu());
                }
                vm.ram_used_mb += kind.ram_mb() + ContainerKind::PhyNet.ram_mb();
                mgmt.register_device(vm_ids[vm_idx], &device.name, device.mgmt_addr)
                    .expect("unique production hostnames and mgmt IPs");
                sandboxes.insert(
                    dev,
                    Sandbox {
                        vm: vm_idx,
                        phynet,
                        device: sandbox,
                    },
                );
            }
        }
    }

    // Virtual links between placed sandboxes (VXLAN for inter-VM spans).
    let mut vnis = VniAllocator::new();
    let mut vlinks = Vec::new();
    let mut link_span = HashMap::new();
    {
        let mut cloud = cloud.lock().expect("cloud lock poisoned");
        for (lid, link) in topo.links() {
            let (Some(sa), Some(sb)) =
                (sandboxes.get(&link.a.device), sandboxes.get(&link.b.device))
            else {
                continue; // both ends outside the emulation
            };
            let vl = VirtualLink::provision(lid, vm_ids[sa.vm], vm_ids[sb.vm], false, &mut vnis);
            link_span.insert(lid, vl.span);
            // Tunnel setup costs CPU on both hosting VMs.
            if vl.span != LinkSpan::IntraVm {
                cloud
                    .vm_mut(vm_ids[sa.vm])
                    .cpu
                    .submit(SimTime::ZERO, options.bridge.setup_cpu());
                cloud
                    .vm_mut(vm_ids[sb.vm])
                    .cpu
                    .submit(SimTime::ZERO, options.bridge.setup_cpu());
            }
            vlinks.push(vl);
        }
    }

    let network_ready_at = {
        let cloud = cloud.lock().expect("cloud lock poisoned");
        vm_ids
            .iter()
            .map(|&id| cloud.vm(id).cpu.drained_at())
            .max()
            .unwrap_or(SimTime::ZERO)
            // Orchestrator-side batching / verification overhead.
            + SimDuration::from_secs(5)
    };

    // ------------------------------------------------------------------
    // Phase 2: boot firmware, converge routes.
    // ------------------------------------------------------------------
    let mut device_vm = HashMap::new();
    let mut device_cost = HashMap::new();
    for (&dev, sb) in &sandboxes {
        device_vm.insert(dev, vm_ids[sb.vm]);
    }

    let work = VmWorkModel {
        cloud: cloud.clone(),
        device_vm,
        device_cost: HashMap::new(), // filled below
        device_busy: HashMap::new(),
        link_span,
        jitter_seed: SimRng::for_component(options.seed, "work").below(u64::MAX),
        boot_seq: HashMap::new(),
    };
    let mut sim = ControlPlaneSim::new(&topo, Box::new(work));
    if options.telemetry || options.profiling {
        let mut rec = MemRecorder::with_trace_capacity(options.trace_capacity);
        if options.profiling {
            rec = rec.with_profiling();
        }
        sim.engine.world.recorder = Box::new(rec);
        sim.sync_tracing();
    }

    // Device firmwares.
    for (dev, cfg) in &prep.configs {
        let profile = options
            .profile_overrides
            .get(dev)
            .copied()
            .unwrap_or_else(|| VendorProfile::for_vendor(topo.device(*dev).vendor));
        let kind_cpu = sandbox_kind(topo.device(*dev).vendor).start_cpu();
        device_cost.insert(
            *dev,
            (
                kind_cpu + profile.cpu_boot,
                rng.jitter(profile.boot_time, 0.2),
                profile.cpu_per_route_op,
            ),
        );
        let os = BgpRouterOs::new(profile, cfg.clone(), topo.device(*dev).loopback);
        sim.add_os(*dev, Box::new(os));
    }
    // Speakers.
    for (dev, _) in &prep.speaker_plan.scripts {
        if let Some(os) = prep.speaker_plan.build_os(&topo, *dev) {
            device_cost.insert(
                *dev,
                (
                    ContainerKind::Speaker.start_cpu(),
                    SimDuration::from_secs(3),
                    SimDuration::from_micros(5),
                ),
            );
            sim.add_os(*dev, Box::new(os));
        }
    }
    // Install the completed cost table into the live work model. The
    // world owns the box, so rebuild it in place.
    install_costs(&mut sim, device_cost);

    sim.boot_all(network_ready_at);

    // Continuous health plane: the probe mesh spans the emulated BGP
    // routers (speakers announce, they do not carry traffic) and starts
    // one period after network-ready, so early rounds observe the boot
    // transient — deterministically, since probe events are non-causal
    // and never perturb convergence.
    if let Some(cfg) = &options.health_probes {
        let mut cfg = cfg.clone();
        if cfg.seed == 0 {
            cfg.seed = options.seed;
        }
        let mut population: Vec<(DeviceId, Ipv4Addr)> = prep
            .configs
            .iter()
            .map(|(dev, _)| (*dev, topo.device(*dev).loopback))
            .collect();
        population.sort_by_key(|(d, _)| d.0);
        let first_tick = network_ready_at + cfg.period;
        sim.enable_health(cfg, population, first_tick);
    }

    // Traffic plane: seeded flow generation over the same router
    // population. Like the probe mesh, flow events are non-causal and
    // never perturb convergence; the first round fires one period after
    // network-ready so flows exercise the boot transient too.
    if let Some(cfg) = &options.traffic {
        let mut cfg = cfg.clone();
        if cfg.seed == 0 {
            cfg.seed = options.seed;
        }
        let mut population: Vec<(DeviceId, Ipv4Addr)> = prep
            .configs
            .iter()
            .map(|(dev, _)| (*dev, topo.device(*dev).loopback))
            .collect();
        population.sort_by_key(|(d, _)| d.0);
        let first_tick = network_ready_at + cfg.period;
        sim.enable_traffic(cfg, population, first_tick);
    }

    let t_converge = options.profiling.then(Instant::now);
    let route_ready_at = converge(
        &mut sim,
        &topo,
        &sandboxes,
        &options,
        network_ready_at + options.deadline,
    )
    .expect("emulation failed to converge before the deadline");
    if let Some(t0) = t_converge {
        sim.engine.world.recorder.profile_add(
            profile_keys::MOCKUP_CONVERGE,
            t0.elapsed().as_nanos() as u64,
        );
    }
    let route_ops = sim.engine.world.route_ops_total;

    // Phase spans + orchestrator events, emitted serially so their order
    // is identical whatever `workers` drove the convergence.
    if sim.engine.world.recorder.enabled() {
        let boot_end = MemRecorder::from_recorder(&*sim.engine.world.recorder)
            .and_then(|m| m.gauge("routing.last_boot_done_ns"))
            .map_or(network_ready_at, SimTime);
        let rec = &mut *sim.engine.world.recorder;
        rec.span("mockup", None, SimTime::ZERO, route_ready_at);
        rec.span("boot", None, network_ready_at, boot_end);
        rec.event(
            network_ready_at,
            "network_ready",
            vec![
                ("vms", FieldValue::U64(vm_ids.len() as u64)),
                ("vlinks", FieldValue::U64(vlinks.len() as u64)),
            ],
        );
        rec.event(
            route_ready_at,
            "route_ready",
            vec![("route_ops", FieldValue::U64(route_ops))],
        );
    }

    if let Some(t0) = t_mockup {
        sim.engine
            .world
            .recorder
            .profile_add(profile_keys::MOCKUP, t0.elapsed().as_nanos() as u64);
    }

    // Mark sandboxes running.
    for sb in sandboxes.values() {
        engines[sb.vm].start(sb.device);
    }

    let vm_count = vm_ids.len();
    let fault_plan = options.fault_plan.clone();
    let classification = prep.classification();
    let emulated_now = prep.emulated.clone();
    let mut emu = Emulation {
        topo,
        sim,
        cloud,
        vm_ids,
        engines,
        sandboxes,
        vlinks,
        mgmt,
        metrics: MockupMetrics::from_phases(network_ready_at, route_ready_at, route_ops),
        traces: TraceStore::new(),
        prep,
        journal: RecoveryJournal::default(),
        vm_down: vec![false; vm_count],
        recovering_until: HashMap::new(),
        speaker_epochs: HashMap::new(),
        vnis,
        options,
        config_overrides: HashMap::new(),
        speaker_overrides: HashMap::new(),
        classification,
        emulated_now,
        change_log: Vec::new(),
        next_signature: 1,
    };
    if !fault_plan.is_empty() {
        emu.run_fault_plan(&fault_plan)
            .expect("options.fault_plan failed to execute");
    }
    emu
}

/// Runs the sim to route quiescence — serially, or on the sharded
/// conservative executor when `options.workers > 1`.
///
/// The partition is VM-aligned (devices sharing a VM share a shard, so a
/// VM's CPU server is only ever driven by one worker thread), shard work
/// models are forked from the live [`VmWorkModel`] — they share the cloud
/// through its `Arc` — and per-device state is folded back after the
/// join. Combined with the executor's serial-equivalence protocol, the
/// result is bit-identical to a serial run.
pub(crate) fn converge(
    sim: &mut ControlPlaneSim,
    topo: &Topology,
    sandboxes: &HashMap<DeviceId, Sandbox>,
    options: &MockupOptions,
    deadline: SimTime,
) -> Option<SimTime> {
    let workers = options.workers.max(1);
    if workers == 1 {
        return sim.run_until_quiet(options.quiet, deadline);
    }
    // Devices sharing a VM must share a shard; unplaced devices float as
    // singleton groups.
    let n_vms = sandboxes.values().map(|sb| sb.vm + 1).max().unwrap_or(0);
    let mut next_free = n_vms as u32;
    let group_of: Vec<u32> = (0..topo.device_count() as u32)
        .map(|i| match sandboxes.get(&DeviceId(i)) {
            Some(sb) => sb.vm as u32,
            None => {
                let g = next_free;
                next_free += 1;
                g
            }
        })
        .collect();
    // The partition may produce fewer shards than requested workers on
    // small fleets (one shard per VM group at most).
    let part = partition_grouped(topo, workers, &group_of);

    let template = sim
        .engine
        .world
        .work_mut()
        .as_any_mut()
        .downcast_mut::<VmWorkModel>()
        .expect("mockup sims drive a VmWorkModel")
        .clone();
    let shard_work: Vec<Box<dyn WorkModel>> = (0..part.shard_count())
        .map(|_| Box::new(template.clone()) as Box<dyn WorkModel>)
        .collect();
    let (t, models) = sim.run_until_quiet_parallel(options.quiet, deadline, &part, shard_work);

    let main = sim
        .engine
        .world
        .work_mut()
        .as_any_mut()
        .downcast_mut::<VmWorkModel>()
        .expect("mockup sims drive a VmWorkModel");
    for (shard, mut model) in models.into_iter().enumerate() {
        if let Some(m) = model.as_any_mut().downcast_mut::<VmWorkModel>() {
            main.absorb(m, &part.shards[shard]);
        }
    }
    t
}

/// Stable label for a forwarding decision in exported trace records.
fn decision_label(d: ForwardDecision) -> &'static str {
    match d {
        ForwardDecision::Forward(_) => "forward",
        ForwardDecision::Deliver => "deliver",
        ForwardDecision::DropNoRoute => "drop-no-route",
        ForwardDecision::DropTtlExpired => "drop-ttl-expired",
        ForwardDecision::DropAcl => "drop-acl",
    }
}

/// Replaces the device-cost table inside the sim's boxed work model.
fn install_costs(
    sim: &mut ControlPlaneSim,
    costs: HashMap<DeviceId, (SimDuration, SimDuration, SimDuration)>,
) {
    if let Some(model) = sim
        .engine
        .world
        .work_mut()
        .as_any_mut()
        .downcast_mut::<VmWorkModel>()
    {
        model.device_cost = costs;
    }
}

impl Emulation {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.engine.now()
    }

    /// Checks that `dev` is reachable for a control/monitor call:
    /// emulated, on a live VM, and not mid-recovery.
    pub(crate) fn guard(&self, dev: DeviceId) -> Result<(), EmulationError> {
        let Some(sb) = self.sandboxes.get(&dev) else {
            let name = if (dev.0 as usize) < self.topo.device_count() {
                self.topo.device(dev).name.clone()
            } else {
                format!("device#{}", dev.0)
            };
            return Err(EmulationError::UnknownDevice(name));
        };
        if self.vm_down.get(sb.vm).copied().unwrap_or(false) {
            return Err(EmulationError::VmDown(sb.vm));
        }
        if let Some(&until) = self.recovering_until.get(&dev) {
            if until > self.now() {
                return Err(EmulationError::DeviceRecovering(
                    self.topo.device(dev).name.clone(),
                ));
            }
        }
        Ok(())
    }

    /// Appends to the recovery journal, mirroring each entry into the
    /// telemetry recorder — fault counters, the recovery-latency
    /// histogram, and a `recovery` span per completion. Every fault and
    /// recovery step emits through here so the journal's typed query API
    /// and the run report can never drift apart.
    pub(crate) fn journal_event(&mut self, at: SimTime, kind: JournalKind) {
        let rec = &mut *self.sim.engine.world.recorder;
        if rec.enabled() {
            match &kind {
                JournalKind::FaultInjected { .. } => rec.counter_add("core.faults_injected", 1),
                JournalKind::HeartbeatMissed { .. } => rec.counter_add("core.heartbeat_misses", 1),
                JournalKind::VmDeclaredDead { .. } => rec.counter_add("core.vms_declared_dead", 1),
                JournalKind::RebootAttempt { .. } => rec.counter_add("core.reboot_attempts", 1),
                JournalKind::VmQuarantined { .. } => rec.counter_add("core.vms_quarantined", 1),
                JournalKind::SpeakerRestarted { .. } => {
                    rec.counter_add("core.speakers_restarted", 1);
                }
                JournalKind::LinkFlap { .. } => rec.counter_add("core.link_flaps", 1),
                JournalKind::RecoveryComplete { latency, .. } => {
                    rec.counter_add("core.recoveries", 1);
                    rec.histogram_record("core.recovery_latency_ns", latency.as_nanos() as f64);
                    rec.span("recovery", None, at - *latency, at);
                }
            }
        }
        self.journal.record(at, kind);
    }

    /// `PullReport`: the run's observability snapshot — phase and
    /// recovery spans, the merged metrics registry, orchestrator events,
    /// and the time-sorted journal. Canonical JSON
    /// ([`RunReport::to_json`]) is bit-identical across repetitions and
    /// across `workers` values for the same seed; the empty report is
    /// returned when the mockup was built with `telemetry(false)`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use crystalnet::prelude::*;
    /// # use crystalnet::PlanOptions;
    /// # use crystalnet_net::fixtures::fig7;
    /// # let f = fig7();
    /// # let prep = prepare(&f.topo, &[], BoundaryMode::WholeNetwork,
    /// #     SpeakerSource::OriginatedOnly, &PlanOptions::default());
    /// let emu = mockup(Arc::new(prep), MockupOptions::builder().build());
    ///
    /// let report = emu.pull_report();
    /// assert!(report.enabled);
    /// assert!(report.counters["routing.devices_booted"] > 0);
    /// let json = report.to_json(); // the canonical artifact CI validates
    /// # assert!(json.contains("\"spans\""));
    /// ```
    #[must_use]
    pub fn pull_report(&self) -> RunReport {
        let Some(mem) = MemRecorder::from_recorder(&*self.sim.engine.world.recorder) else {
            return RunReport::disabled();
        };
        let mut report = mem
            .report()
            .with_meta("seed", FieldValue::U64(self.options.seed))
            .with_meta("devices", FieldValue::U64(self.sandboxes.len() as u64))
            .with_meta("vms", FieldValue::U64(self.vm_ids.len() as u64))
            .with_meta("quiet", FieldValue::Dur(self.options.quiet))
            .with_meta("deadline", FieldValue::Dur(self.options.deadline))
            .with_meta("network_ready", FieldValue::Dur(self.metrics.network_ready))
            .with_meta("route_ready", FieldValue::Dur(self.metrics.route_ready));
        // Per-device convergence spans, derived from the last
        // route-activity gauge: boot start → final route installation.
        if let Some(per_dev) = mem.device_gauge("routing.convergence_ns") {
            let start = self.metrics.ready_at - self.metrics.route_ready;
            for (&dev, &end_ns) in per_dev {
                report.spans.push(SpanRecord {
                    name: "convergence".to_string(),
                    device: Some(dev),
                    start,
                    end: SimTime(end_ns),
                });
            }
        }
        report.journal = self
            .journal
            .sorted()
            .events
            .iter()
            .map(JournalEvent::to_event_record)
            .collect();
        // Execution-shape facts: never part of the canonical sections.
        report.diagnostics.insert(
            "sim.engine.events_executed".to_string(),
            self.sim.engine.events_executed(),
        );
        report.diagnostics.insert(
            "sim.engine.queue_high_water".to_string(),
            self.sim.engine.queue_high_water() as u64,
        );
        let (hits, misses) = crystalnet_routing::intern_stats();
        report
            .diagnostics
            .insert("routing.intern_hits".to_string(), hits);
        report
            .diagnostics
            .insert("routing.intern_misses".to_string(), misses);
        if mem.profiling_enabled() {
            report.memory = Some(self.memory_section(None));
        }
        report
    }

    /// Builds the memory-accounting section of a profiled report.
    ///
    /// Byte figures are entry counts multiplied by struct-size
    /// estimates, not allocator measurements — deterministic for a seed
    /// on a given platform, which is what a regression baseline needs.
    pub(crate) fn memory_section(&self, fork_cow: Option<CowStats>) -> MemorySection {
        use std::mem::size_of;
        // RIB entries hold a prefix plus an interned-attrs handle and
        // per-peer bookkeeping; interned attrs records amortize an AS
        // path and hash-table slot. Both are flat per-entry estimates.
        const RIB_ENTRY_BYTES: u64 = 48;
        const ATTRS_BYTES: u64 = 96;
        const QUEUE_EVENT_BYTES: u64 = 128;

        let mut totals = DeviceMemTotals::default();
        let mut per_dev: Vec<DeviceMem> = Vec::new();
        let mut devs: Vec<DeviceId> = self.sandboxes.keys().copied().collect();
        devs.sort_by_key(|d| d.0);
        for dev in devs {
            let Some(os) = self.sim.os(dev) else { continue };
            let rib_entries = os.rib_size() as u64;
            let fib = os.fib();
            let prefixes = fib.len() as u64;
            let routes = fib.route_entry_count() as u64;
            let fib_bytes = prefixes * size_of::<(Ipv4Prefix, FibEntry)>() as u64
                + routes * size_of::<NextHop>() as u64;
            let rib_bytes = rib_entries * RIB_ENTRY_BYTES;
            totals.devices += 1;
            totals.rib_entries += rib_entries;
            totals.rib_bytes += rib_bytes;
            totals.fib_prefixes += prefixes;
            totals.fib_route_entries += routes;
            totals.fib_bytes += fib_bytes;
            per_dev.push(DeviceMem {
                device: dev.0,
                rib_bytes,
                fib_bytes,
            });
        }
        per_dev.sort_by_key(|d| (std::cmp::Reverse(d.rib_bytes + d.fib_bytes), d.device));
        per_dev.truncate(8);

        let (hits, _misses) = crystalnet_routing::intern_stats();
        let entries = crystalnet_routing::PathAttrs::interned_count() as u64;
        let pending = self.sim.engine.events_pending() as u64;
        MemorySection {
            devices: totals,
            top_devices: per_dev,
            interner: InternerMem {
                entries,
                table_bytes: entries * ATTRS_BYTES,
                hits,
                hit_bytes_saved: hits * ATTRS_BYTES,
            },
            event_queue: QueueMem {
                pending_events: pending,
                residue_bytes: pending * QUEUE_EVENT_BYTES,
            },
            fork_cow,
        }
    }

    /// The live [`VmWorkModel`] inside the sim, if one is installed.
    pub(crate) fn work_model(&mut self) -> Option<&mut VmWorkModel> {
        self.sim
            .engine
            .world
            .work_mut()
            .as_any_mut()
            .downcast_mut::<VmWorkModel>()
    }

    /// Runs until route quiescence (post-change convergence), honouring
    /// `MockupOptions::workers`.
    ///
    /// # Errors
    ///
    /// [`EmulationError::NotConverged`] if quiescence is not reached
    /// before `MockupOptions::deadline` elapses.
    pub fn settle(&mut self) -> Result<SimTime, EmulationError> {
        let start = self.now();
        let deadline = start + self.options.deadline;
        let t_settle = self.options.profiling.then(Instant::now);
        let settled = converge(
            &mut self.sim,
            &self.topo,
            &self.sandboxes,
            &self.options,
            deadline,
        )
        .ok_or(EmulationError::NotConverged)?;
        let rec = &mut *self.sim.engine.world.recorder;
        if let Some(t0) = t_settle {
            rec.profile_add(profile_keys::SETTLE, t0.elapsed().as_nanos() as u64);
        }
        if rec.enabled() {
            rec.span("settle", None, start, settled);
        }
        Ok(settled)
    }

    /// Advances virtual time by `dur`, running every event due in the
    /// window — including health-plane probe rounds, which `settle`
    /// would skip on an already-quiet network (probe events are
    /// non-causal, so quiescence detection stops before them).
    ///
    /// This is the "watch the network for a while" primitive: inject a
    /// gray failure, `advance` a few probe periods, then read
    /// [`Self::incidents`].
    pub fn advance(&mut self, dur: SimDuration) {
        let until = self.now() + dur;
        self.sim.run_until(until);
    }

    /// The health plane's gauges as a canonical [`HealthReport`]
    /// (see [`crate::health`]). When the health plane is off
    /// ([`MockupOptionsBuilder::health`] not called), returns
    /// [`HealthReport::disabled`].
    #[must_use]
    pub fn pull_health(&self) -> crate::health::HealthReport {
        match self.sim.health() {
            Some(state) => {
                crate::health::HealthReport::from_state(state, |d| self.topo.device(d).name.clone())
            }
            None => crate::health::HealthReport::disabled(),
        }
    }

    /// The traffic plane's gauges as a canonical
    /// [`TrafficReport`](crate::traffic::TrafficReport) (see
    /// [`crate::traffic`]). When the traffic plane is off
    /// ([`MockupOptionsBuilder::traffic`] not called), returns
    /// [`TrafficReport::disabled`](crate::traffic::TrafficReport::disabled).
    #[must_use]
    pub fn pull_traffic(&self) -> crate::traffic::TrafficReport {
        match self.sim.traffic() {
            Some(state) => crate::traffic::TrafficReport::from_state(state, |d| {
                self.topo.device(d).name.clone()
            }),
            None => crate::traffic::TrafficReport::disabled(),
        }
    }

    /// The incident timeline with causes correlated: every watchdog
    /// firing (blackhole, forwarding loop, SLO breach, FIB-churn
    /// anomaly, and — when the traffic plane runs — link
    /// over-subscription, ECMP polarisation, flow SLO breach) in
    /// virtual-time order, each attributed to the nearest preceding
    /// fault, recovery action, or applied change within
    /// [`crate::health::CORRELATION_WINDOW`].
    #[must_use]
    pub fn incidents(&self) -> Vec<crate::health::CorrelatedIncident> {
        let health = self
            .sim
            .health()
            .map(|h| h.incidents.as_slice())
            .unwrap_or(&[]);
        let traffic = self
            .sim
            .traffic()
            .map(|t| t.incidents.as_slice())
            .unwrap_or(&[]);
        let resolve = |d| self.topo.device(d).name.clone();
        if traffic.is_empty() {
            // Traffic off (or quiet): identical path — and bytes — to a
            // health-only build.
            return crate::health::correlate(health, &self.journal, &self.change_log, resolve);
        }
        let mut merged: Vec<_> = health.iter().chain(traffic).cloned().collect();
        merged.sort_by_key(crystalnet_routing::Incident::sort_key);
        crate::health::correlate(&merged, &self.journal, &self.change_log, resolve)
    }

    /// [`Self::incidents`] as JSONL — one canonical object per line,
    /// artifact-friendly.
    #[must_use]
    pub fn incidents_jsonl(&self) -> String {
        crate::health::incidents_jsonl(&self.incidents())
    }

    /// Silently kills (or restores) a device's dataplane forwarding
    /// while its control plane keeps running — the canonical gray
    /// failure. BGP sessions stay up and the FIB keeps converging;
    /// only health-plane probes observe the difference. Also available
    /// as [`crate::faults::FaultKind::SilentBlackhole`] in a fault
    /// plan.
    ///
    /// # Errors
    ///
    /// [`EmulationError::UnknownDevice`] if `dev` is not emulated.
    pub fn set_forwarding(&mut self, dev: DeviceId, enabled: bool) -> Result<(), EmulationError> {
        if !self.sandboxes.contains_key(&dev) {
            return Err(EmulationError::UnknownDevice(format!("device #{}", dev.0)));
        }
        self.sim.set_forwarding(dev, enabled);
        Ok(())
    }

    /// `List`: all emulated devices with hostnames and liveness.
    #[must_use]
    pub fn list(&self) -> Vec<(DeviceId, String, bool)> {
        self.sandboxes
            .keys()
            .map(|&d| (d, self.topo.device(d).name.clone(), self.sim.is_up(d)))
            .collect()
    }

    /// `Login`: resolve a device by management DNS name and run a command
    /// over the management overlay.
    ///
    /// # Errors
    ///
    /// [`EmulationError::UnknownDevice`] if the name does not resolve,
    /// [`EmulationError::VmDown`] / [`EmulationError::DeviceRecovering`]
    /// if the device is unreachable mid-fault, and
    /// [`EmulationError::DeviceUnresponsive`] if it resolved but did not
    /// answer (powered off or shut down).
    pub fn login_and_run(
        &mut self,
        name: &str,
        cmd: MgmtCommand,
    ) -> Result<MgmtResponse, EmulationError> {
        let dev = self
            .mgmt
            .resolve(name)
            .and_then(|addr| self.mgmt.reverse(addr))
            .and_then(|host| self.topo.by_name(host))
            .ok_or_else(|| EmulationError::UnknownDevice(name.to_string()))?;
        self.guard(dev)?;
        self.sim
            .mgmt_sync(dev, cmd)
            .ok_or_else(|| EmulationError::DeviceUnresponsive(name.to_string()))
    }

    /// `PullStates`: forwarding/RIB summary for one device.
    ///
    /// # Errors
    ///
    /// [`EmulationError::UnknownDevice`], [`EmulationError::VmDown`], or
    /// [`EmulationError::DeviceRecovering`] when the device is absent or
    /// unreachable mid-fault.
    pub fn pull_states(&self, dev: DeviceId) -> Result<DeviceState, EmulationError> {
        self.guard(dev)?;
        let os = self
            .sim
            .os(dev)
            .ok_or_else(|| EmulationError::UnknownDevice(self.topo.device(dev).name.clone()))?;
        Ok(DeviceState {
            device: dev,
            hostname: os.hostname().to_string(),
            up: self.sim.is_up(dev),
            rib_size: os.rib_size(),
            fib_prefixes: os.fib().len(),
            fib_route_entries: os.fib().route_entry_count(),
        })
    }

    /// `PullConfig`: the running configuration text for rollback.
    ///
    /// # Errors
    ///
    /// [`EmulationError::UnknownDevice`] if no prepared configuration
    /// exists for `dev` (speakers, unemulated ids), plus the
    /// `guard` reachability errors.
    pub fn pull_config(&self, dev: DeviceId) -> Result<String, EmulationError> {
        self.guard(dev)?;
        self.effective_config(dev)
            .map(crystalnet_config::render)
            .ok_or_else(|| EmulationError::UnknownDevice(self.topo.device(dev).name.clone()))
    }

    /// The configuration the device is *currently* running: the last one
    /// applied by [`Self::reload`] / `apply_change`, falling back to the
    /// prepared snapshot. `None` for speakers and unemulated ids.
    pub(crate) fn effective_config(&self, dev: DeviceId) -> Option<&DeviceConfig> {
        self.config_overrides.get(&dev).or_else(|| {
            self.prep
                .configs
                .iter()
                .find(|(d, _)| *d == dev)
                .map(|(_, c)| c)
        })
    }

    /// `Disconnect`: takes a production link down in the emulation.
    pub fn disconnect(&mut self, lid: LinkId) {
        let ep = ControlPlaneSim::link_endpoints(&self.topo, lid);
        let at = self.now();
        self.sim.link_down(ep, at);
    }

    /// `Connect`: brings a production link back up.
    pub fn connect(&mut self, lid: LinkId) {
        let ep = ControlPlaneSim::link_endpoints(&self.topo, lid);
        let at = self.now();
        self.sim.link_up(ep, at);
    }

    /// `InjectPackets`: sends a probe with a fresh telemetry signature
    /// from `from`, captures per-hop traces, and returns the signature.
    pub fn inject_packet(&mut self, from: DeviceId, src: Ipv4Addr, dst: Ipv4Addr) -> Signature {
        let sig = Signature(self.next_signature);
        self.next_signature = self.next_signature.wrapping_add(1).max(1);
        let pkt = Ipv4Packet {
            src,
            dst,
            protocol: crystalnet_dataplane::ipproto::UDP,
            ttl: 64,
            identification: sig.0,
            payload: Bytes::new(),
        };
        let (path, outcome) = self.sim.trace_packet(from, &pkt);
        let now = self.now().as_nanos();
        for (hop, &dev) in path.iter().enumerate() {
            let decision = if hop + 1 == path.len() {
                outcome
            } else {
                // Mid-path devices forwarded; the exact hop is implied by
                // the next path element.
                ForwardDecision::Forward(crystalnet_dataplane::NextHop {
                    iface: 0,
                    via: Ipv4Addr(0),
                })
            };
            // Join the packet hop to the control plane: the digest of the
            // provenance chain behind the FIB entry this device used.
            let prov = self.sim.os(dev).and_then(|os| {
                let (prefix, _) = os.fib().lookup(dst)?;
                Some(os.route_detail(prefix)?.prov.digest())
            });
            self.traces.capture(
                &pkt,
                TraceEvent {
                    at_nanos: now + hop as u64 * 1_000,
                    device: dev,
                    ingress: None,
                    decision,
                    hop: hop as u32,
                    prov,
                },
            );
        }
        sig
    }

    /// `PullPackets`: the path a signature took and its fate.
    ///
    /// # Errors
    ///
    /// [`EmulationError::UnknownSignature`] if no trace was captured
    /// under `sig`.
    pub fn pull_packets(
        &self,
        sig: Signature,
    ) -> Result<(Vec<DeviceId>, ForwardDecision), EmulationError> {
        match self.traces.outcome(sig) {
            Some(outcome) => Ok((self.traces.path(sig), outcome)),
            None => Err(EmulationError::UnknownSignature(sig.0)),
        }
    }

    /// `ExplainRoute`: the full causal answer to "why does `device`
    /// forward `prefix` that way?" — origin announcement, per-hop
    /// propagation chain (with hostnames and event ids), and the
    /// best-path decision reason.
    ///
    /// # Errors
    ///
    /// [`EmulationError::UnknownDevice`] if the hostname does not
    /// resolve, the `guard` reachability errors, and
    /// [`EmulationError::NoRoute`] if the device holds no FIB entry for
    /// `prefix`.
    pub fn explain_route(
        &self,
        device: &str,
        prefix: Ipv4Prefix,
    ) -> Result<RouteExplanation, EmulationError> {
        let dev = self
            .topo
            .by_name(device)
            .ok_or_else(|| EmulationError::UnknownDevice(device.to_string()))?;
        self.guard(dev)?;
        let os = self
            .sim
            .os(dev)
            .ok_or_else(|| EmulationError::UnknownDevice(device.to_string()))?;
        let detail = os.route_detail(prefix).ok_or(EmulationError::NoRoute {
            device: device.to_string(),
            prefix,
        })?;
        Ok(RouteExplanation::from_detail(
            dev,
            os.hostname().to_string(),
            prefix,
            &detail,
            |router| self.hostname_of_loopback(router),
        ))
    }

    /// Resolves a router loopback back to its production hostname.
    fn hostname_of_loopback(&self, loopback: Ipv4Addr) -> Option<String> {
        (0..self.topo.device_count() as u32)
            .map(DeviceId)
            .find(|&d| self.topo.device(d).loopback == loopback)
            .map(|d| self.topo.device(d).name.clone())
    }

    /// `PullTrace`: the merged deterministic causal trace — control-plane
    /// records (boots, link transitions, frame deliveries, FIB mutations
    /// with provenance) from the ring-buffer sink, plus one `packet_hop`
    /// record per captured [`TraceEvent`], each carrying the provenance
    /// digest of the FIB entry that forwarded it. Sorted by the global
    /// rank, so the stream is byte-identical across `workers` values and
    /// repetitions for a fixed seed.
    #[must_use]
    pub fn pull_trace(&self) -> Vec<TraceRecord> {
        let mut recs: Vec<TraceRecord> =
            MemRecorder::from_recorder(&*self.sim.engine.world.recorder)
                .and_then(MemRecorder::trace_sink)
                .map(crystalnet_telemetry::TraceSink::records)
                .unwrap_or_default();
        for sig in self.traces.signatures() {
            for ev in self.traces.events(sig) {
                // Synthetic event id in a key range no scheduled event
                // uses (high bit set), so packet hops interleave with
                // control-plane records by time without colliding.
                let id = EventId {
                    time_ns: ev.at_nanos,
                    key: (1 << 63) | (u64::from(sig.0) << 16) | u64::from(ev.hop),
                };
                let mut fields = vec![
                    ("signature", FieldValue::U64(u64::from(sig.0))),
                    ("hop", FieldValue::U64(u64::from(ev.hop))),
                    (
                        "decision",
                        FieldValue::Str(decision_label(ev.decision).to_string()),
                    ),
                ];
                if let Some(p) = ev.prov {
                    fields.push(("prov", FieldValue::U64(p)));
                }
                recs.push(TraceRecord::new(
                    SimTime(ev.at_nanos),
                    id,
                    None,
                    "packet_hop",
                    Some(ev.device.0),
                    fields,
                ));
            }
        }
        recs.sort_by_key(TraceRecord::rank);
        recs
    }

    /// The merged trace as JSON Lines (one record per line).
    #[must_use]
    pub fn trace_jsonl(&self) -> String {
        trace_jsonl(&self.pull_trace())
    }

    /// The merged trace as a Chrome trace-event JSON document, loadable
    /// in Perfetto / `chrome://tracing`.
    #[must_use]
    pub fn trace_chrome_json(&self) -> String {
        trace_chrome_json(&self.pull_trace())
    }

    /// Runtime Lemma 5.1 audit
    /// ([`audit_provenance`](crystalnet_boundary::audit_provenance)) over
    /// every converged route: a boundary-crossing route must *originate*
    /// at a speaker (the legal single crossing) and must never pass
    /// *through* one mid-chain (a second crossing).
    ///
    /// # Errors
    ///
    /// The first offending route, in device-id then iteration order.
    pub fn audit_boundary(&self) -> Result<(), crystalnet_boundary::ProvenanceWitness> {
        let speakers: BTreeSet<Ipv4Addr> = self
            .prep
            .speaker_plan
            .scripts
            .iter()
            .map(|(d, _)| self.topo.device(*d).loopback)
            .collect();
        let mut devs: Vec<DeviceId> = self.sandboxes.keys().copied().collect();
        devs.sort_unstable_by_key(|d| d.0);
        for dev in devs {
            let Some(os) = self.sim.os(dev) else { continue };
            let rows = os.routes_with_detail();
            crystalnet_boundary::audit_provenance(
                rows.iter().map(|(p, detail)| (dev, *p, &*detail.prov)),
                &speakers,
            )?;
        }
        Ok(())
    }

    /// `Reload`: reboots one device with a new configuration.
    ///
    /// Two-layer mode (the CrystalNet design) keeps the PhyNet namespace:
    /// stop software, overwrite config, restart — ~3 s. Strawman mode
    /// (everything-together, the §8.3 ablation) additionally tears down
    /// and recreates every interface, link and tunnel.
    ///
    /// Returns the device downtime.
    pub fn reload(&mut self, dev: DeviceId, config: DeviceConfig, strawman: bool) -> SimDuration {
        let sb = self.sandboxes[&dev];
        let iface_count = self.topo.device(dev).ifaces.len() as u64;
        // Stop software (PhyNet survives in two-layer mode).
        self.engines[sb.vm].stop(sb.device);
        let mut downtime = SimDuration::from_millis(500) // stop
            + SimDuration::from_millis(500) // overwrite configuration
            + SimDuration::from_secs(2); // start container
        if strawman {
            // Tear down and recreate the namespace: veth pairs, bridges,
            // VXLAN tunnels and addressing for every interface.
            downtime += SimDuration::from_millis(400) * iface_count // recreate
                + SimDuration::from_secs(3); // namespace + container rebuild
        }
        self.engines[sb.vm].start(sb.device);
        let at = self.now() + downtime;
        self.recovering_until.insert(dev, at);
        self.config_overrides.insert(dev, config.clone());
        self.sim
            .mgmt(dev, MgmtCommand::ReplaceConfig(Box::new(config)), at);
        downtime
    }

    /// Kills every sandbox on VM `vm_idx` at `at`: the VM is marked dead,
    /// its devices power off and their neighbors see link-down. Returns
    /// the victims.
    pub(crate) fn crash_vm_devices(&mut self, vm_idx: usize, at: SimTime) -> Vec<DeviceId> {
        let vm_id = self.vm_ids[vm_idx];
        self.vm_down[vm_idx] = true;
        let mut victims: Vec<DeviceId> = self
            .sandboxes
            .iter()
            .filter(|(_, sb)| sb.vm == vm_idx)
            .map(|(&d, _)| d)
            .collect();
        // Stable order: recovery event scheduling must not depend on
        // hash-map iteration order.
        victims.sort_unstable_by_key(|d| d.0);
        self.cloud
            .lock()
            .expect("cloud lock poisoned")
            .fail_vm(vm_id);
        for &dev in &victims {
            self.sim.power_off(dev);
            for (lid, _, _) in self.topo.neighbors(dev).collect::<Vec<_>>() {
                let ep = ControlPlaneSim::link_endpoints(&self.topo, lid);
                self.sim.link_down(ep, at);
            }
        }
        victims
    }

    /// The §8.3 resetup cost for a set of victims: PhyNet restart +
    /// per-interface bridge setup + sandbox restart, scaling with
    /// deployment density.
    pub(crate) fn vm_recovery_cost(&self, victims: &[DeviceId]) -> SimDuration {
        let mut recovery = SimDuration::ZERO;
        for &dev in victims {
            let device = self.topo.device(dev);
            recovery += ContainerKind::PhyNet.start_cpu();
            recovery += self.options.bridge.setup_cpu() * (device.ifaces.len() as u64);
            recovery += SimDuration::from_millis(800); // sandbox restart
        }
        recovery
    }

    /// Boots fresh OS instances for `victims` at `restored_at` from their
    /// prepared configurations (or speaker scripts, with a bumped
    /// incarnation epoch so peers resync), and brings their links back.
    pub(crate) fn restore_devices(&mut self, victims: &[DeviceId], restored_at: SimTime) {
        for &dev in victims {
            if let Some(cfg) = self.effective_config(dev).cloned() {
                let profile = self
                    .options
                    .profile_overrides
                    .get(&dev)
                    .copied()
                    .unwrap_or_else(|| VendorProfile::for_vendor(self.topo.device(dev).vendor));
                let os = BgpRouterOs::new(profile, cfg, self.topo.device(dev).loopback);
                self.sim.replace_os(dev, Box::new(os));
            } else if let Some(mut os) = self.prep.speaker_plan.build_os(&self.topo, dev) {
                // A restarted speaker must present a fresh session token,
                // or peers treat its Open as a duplicate of the live
                // session and never flush its stale routes.
                // A swapped script survives the restart: the speaker must
                // come back announcing what `apply_change` installed, not
                // the original prepared plan.
                if let Some(scripts) = self.speaker_overrides.get(&dev) {
                    for (iface, script) in scripts {
                        os.set_script(*iface, script.clone());
                    }
                }
                let epoch = *self
                    .speaker_epochs
                    .entry(dev)
                    .and_modify(|e| *e += 1)
                    .or_insert(1);
                os.set_epoch(epoch);
                self.journal_event(
                    restored_at,
                    JournalKind::SpeakerRestarted {
                        device: dev.0,
                        epoch,
                    },
                );
                self.sim.replace_os(dev, Box::new(os));
            }
            self.sim.boot_device(dev, restored_at);
            self.recovering_until.insert(dev, restored_at);
            for (lid, _, _) in self.topo.neighbors(dev).collect::<Vec<_>>() {
                let ep = ControlPlaneSim::link_endpoints(&self.topo, lid);
                self.sim.link_up(ep, restored_at);
            }
        }
    }

    /// Injects a VM failure and runs the health monitor's recovery:
    /// neighbors see links drop; once the VM reboots, its sandboxes and
    /// links are re-created and its devices re-boot from their prepared
    /// configurations.
    ///
    /// Returns the recovery latency (§8.3): reset + resetup of the VM's
    /// devices and links, excluding the VM reboot itself. (The journal's
    /// `RecoveryComplete` entry records the full fault-to-restored
    /// latency including the reboot.)
    ///
    /// # Errors
    ///
    /// [`EmulationError::UnknownVm`] if `vm_idx` is outside the fleet;
    /// [`EmulationError::VmDown`] if that VM was already declared dead
    /// (e.g. quarantined by an earlier fault) — a dead VM cannot fail
    /// again.
    pub fn fail_and_recover_vm(&mut self, vm_idx: usize) -> Result<SimDuration, EmulationError> {
        if vm_idx >= self.vm_ids.len() {
            return Err(EmulationError::UnknownVm(vm_idx));
        }
        if self.vm_down[vm_idx] {
            return Err(EmulationError::VmDown(vm_idx));
        }
        let vm_id = self.vm_ids[vm_idx];
        let now = self.now();
        self.journal_event(
            now,
            JournalKind::FaultInjected {
                fault: format!("vm {vm_idx} crash (direct injection)"),
            },
        );

        // The VM dies: devices vanish; neighbors see link-down.
        let victims = self.crash_vm_devices(vm_idx, now);

        // Health monitor notices and reboots the VM (reboot time itself
        // is excluded from the §8.3 recovery metric).
        let reboot_done = self
            .cloud
            .lock()
            .expect("cloud lock poisoned")
            .reboot(vm_id, now);
        self.cloud
            .lock()
            .expect("cloud lock poisoned")
            .mark_running(vm_id, reboot_done);
        self.cloud
            .lock()
            .expect("cloud lock poisoned")
            .reset_cpu(vm_id, reboot_done);
        self.journal_event(
            now,
            JournalKind::RebootAttempt {
                vm: vm_idx,
                attempt: 1,
                backoff: SimDuration::ZERO,
            },
        );

        // Recovery: re-create PhyNet containers + links, restart device
        // software. Cost scales with deployment density on the VM.
        let recovery = self.vm_recovery_cost(&victims);
        let restored_at = reboot_done + recovery;

        // Fresh OS instances boot from the prepared configs.
        self.restore_devices(&victims, restored_at);
        self.vm_down[vm_idx] = false;
        self.journal_event(
            restored_at,
            JournalKind::RecoveryComplete {
                vm: vm_idx,
                latency: restored_at.since(now),
                devices: victims.len(),
            },
        );
        Ok(recovery)
    }

    /// `Clear`: resets all VMs to a clean state; returns the latency.
    pub fn clear(&mut self) -> SimDuration {
        let now = self.now();
        let mut cloud = self.cloud.lock().expect("cloud lock poisoned");
        for (vm_idx, planned) in self.prep.vm_plan.vms.iter().enumerate() {
            let vm = cloud.vm_mut(self.vm_ids[vm_idx]);
            for &dev in planned.devices.iter().chain(&planned.speakers) {
                let n = self.topo.device(dev).ifaces.len() as u64;
                vm.cpu.submit(now, self.options.bridge.teardown_cpu() * n);
                vm.cpu.submit(now, SimDuration::from_millis(300)); // container kill
            }
            vm.ram_used_mb = 0;
        }
        let done = self
            .vm_ids
            .iter()
            .map(|&id| cloud.vm(id).cpu.drained_at())
            .max()
            .unwrap_or(now);
        for engine in &mut self.engines {
            engine.clear();
        }
        done.since(now)
    }

    /// `Destroy`: releases the VM fleet; returns total dollars burned.
    pub fn destroy(self) -> f64 {
        let cost = self
            .cloud
            .lock()
            .expect("cloud lock poisoned")
            .cost_usd(self.now());
        self.cloud
            .lock()
            .expect("cloud lock poisoned")
            .destroy_all();
        cost
    }

    /// 95th-percentile CPU utilization across VMs per time bucket
    /// (Figure 9's series).
    #[must_use]
    pub fn cpu_p95_series(&self) -> Vec<f64> {
        let cloud = self.cloud.lock().expect("cloud lock poisoned");
        let until = self.now();
        let series: Vec<Vec<f64>> = cloud
            .vms()
            .iter()
            .map(|vm| vm.cpu.utilization_series(until))
            .collect();
        crystalnet_sim::metrics::pointwise_percentile(&series, 95.0)
    }

    /// The CPU histogram bucket width.
    #[must_use]
    pub fn cpu_bucket(&self) -> SimDuration {
        CloudParams::default().cpu_bucket
    }
}

impl Emulation {
    /// Deep-copies the running emulation: the full copy-on-write fork
    /// substrate behind [`Emulation::fork`](crate::session).
    ///
    /// Ownership rules, layer by layer:
    ///
    /// * **Control plane** — every OS is duplicated via
    ///   [`crystalnet_routing::DeviceOs::clone_boxed`]; interned
    ///   `Arc<PathAttrs>`/`Arc<Provenance>` route state is shared
    ///   structurally (the global interner is process-wide, so parent
    ///   and child intern into the same pool). The engine's clock,
    ///   scheduling sequence, and pending-event residue are replicated
    ///   exactly, which is what keeps a fork's subsequent convergence
    ///   bit-identical to the same steps applied in place.
    /// * **Cloud** — deep-copied behind a *fresh* `Arc<Mutex<_>>`: CPU
    ///   server positions and the provisioning RNG resume from the fork
    ///   point, but child work accounting can never reach the parent.
    /// * **Telemetry** — the recorder is deep-copied
    ///   ([`crystalnet_telemetry::Recorder::snapshot`]), so a committed
    ///   fork's report reads "baseline + fork activity".
    /// * **Immutable spine** — `prep` is shared by `Arc`.
    pub(crate) fn fork_emulation(&self) -> Emulation {
        let t_fork = self.options.profiling.then(Instant::now);
        let cloud = Arc::new(Mutex::new(
            self.cloud.lock().expect("cloud lock poisoned").clone(),
        ));
        let work: Box<dyn WorkModel> = {
            let model = self
                .sim
                .engine
                .world
                .work_ref()
                .as_any()
                .downcast_ref::<VmWorkModel>()
                .expect("mockup sims drive a VmWorkModel");
            let mut forked = model.clone();
            forked.cloud = cloud.clone();
            Box::new(forked)
        };
        let recorder = self.sim.engine.world.recorder.snapshot();
        let mut child = Emulation {
            topo: self.topo.clone(),
            sim: self.sim.fork_with(work, recorder),
            cloud,
            vm_ids: self.vm_ids.clone(),
            engines: self.engines.clone(),
            sandboxes: self.sandboxes.clone(),
            vlinks: self.vlinks.clone(),
            mgmt: self.mgmt.clone(),
            metrics: self.metrics,
            traces: self.traces.clone(),
            prep: Arc::clone(&self.prep),
            journal: self.journal.clone(),
            vm_down: self.vm_down.clone(),
            recovering_until: self.recovering_until.clone(),
            speaker_epochs: self.speaker_epochs.clone(),
            vnis: self.vnis.clone(),
            options: self.options.clone(),
            config_overrides: self.config_overrides.clone(),
            speaker_overrides: self.speaker_overrides.clone(),
            classification: self.classification.clone(),
            emulated_now: self.emulated_now.clone(),
            change_log: self.change_log.clone(),
            next_signature: self.next_signature,
        };
        if let Some(t0) = t_fork {
            child
                .sim
                .engine
                .world
                .recorder
                .profile_add(profile_keys::FORK, t0.elapsed().as_nanos() as u64);
        }
        child
    }
}

/// A `PullStates` row.
#[derive(Debug, Clone)]
pub struct DeviceState {
    /// Device id.
    pub device: DeviceId,
    /// Hostname.
    pub hostname: String,
    /// Whether the device is up.
    pub up: bool,
    /// Loc-RIB prefixes.
    pub rib_size: usize,
    /// FIB prefixes.
    pub fib_prefixes: usize,
    /// FIB entries counting ECMP members (Table 3's unit).
    pub fib_route_entries: usize,
}
