//! VM planning: how many VMs, which SKUs, and which device goes where
//! (§6.1 "VM spawning", §6.2 "Running different devices on different
//! groups of VMs").
//!
//! The planner encodes the paper's packing rules:
//! * devices from different vendors never share a VM (one vendor's kernel
//!   tuning can break another's sandboxes),
//! * VM-image devices need nested-virtualization SKUs,
//! * packing is bounded by RAM and by a per-VM virtual-interface budget
//!   (the kernel forwards poorly past a few hundred interfaces),
//! * speakers are lightweight — at least 50 fit per VM (§8.4).

use crystalnet_net::{DeviceId, Topology, Vendor};
use crystalnet_vnet::{ContainerKind, VmSku};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Knobs for the planner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanOptions {
    /// Hard cap on virtual interfaces per VM.
    pub max_ifaces_per_vm: u32,
    /// Hard cap on device sandboxes per VM.
    pub max_devices_per_vm: u32,
    /// Cap on speakers per VM.
    pub max_speakers_per_vm: u32,
    /// Disable vendor grouping (ablation of the §6.2 rule).
    pub vendor_grouping: bool,
    /// Target VM count; the planner spreads devices across at least this
    /// many VMs when given more than it strictly needs (Figure 8 varies
    /// this: S-DC/5 vs S-DC/10 etc.).
    pub target_vms: Option<u32>,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            max_ifaces_per_vm: 600,
            max_devices_per_vm: 12,
            max_speakers_per_vm: 50,
            vendor_grouping: true,
            target_vms: None,
        }
    }
}

/// One planned VM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannedVm {
    /// SKU to provision.
    pub sku: VmSku,
    /// Device sandboxes placed here.
    pub devices: Vec<DeviceId>,
    /// Speaker agents placed here.
    pub speakers: Vec<DeviceId>,
    /// The vendor group (None for speaker-only VMs or ungrouped plans).
    pub vendor: Option<Vendor>,
}

/// The full placement.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VmPlan {
    /// Planned VMs.
    pub vms: Vec<PlannedVm>,
    /// Device → VM index (covers devices and speakers).
    pub placement: HashMap<DeviceId, usize>,
}

impl VmPlan {
    /// Number of VMs.
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Hourly cost of the fleet in USD.
    #[must_use]
    pub fn hourly_cost_usd(&self) -> f64 {
        self.vms.iter().map(|v| v.sku.usd_per_hour).sum()
    }

    /// The VM hosting `dev`.
    #[must_use]
    pub fn vm_of(&self, dev: DeviceId) -> Option<usize> {
        self.placement.get(&dev).copied()
    }
}

/// Plans VMs for `devices` (emulated) and `speakers`.
///
/// Devices are grouped by vendor (unless disabled), each group is packed
/// under the interface/device/RAM caps onto the cheapest adequate SKU,
/// and speakers are packed densely onto standard VMs. When `target_vms`
/// exceeds the minimum, groups are spread evenly to use the budget (more
/// VMs ⇒ fewer devices each ⇒ faster, steadier Mockup — Figure 8).
#[must_use]
pub fn plan_vms(
    topo: &Topology,
    devices: &[DeviceId],
    speakers: &[DeviceId],
    opts: &PlanOptions,
) -> VmPlan {
    let mut plan = VmPlan::default();

    // Group devices by vendor (or one big group).
    let mut groups: BTreeMap<Option<Vendor>, Vec<DeviceId>> = BTreeMap::new();
    for &d in devices {
        let key = opts.vendor_grouping.then(|| topo.device(d).vendor);
        groups.entry(key).or_default().push(d);
    }

    // How many VMs would the caps demand per group?
    let group_min: BTreeMap<Option<Vendor>, usize> = groups
        .iter()
        .map(|(k, devs)| (*k, min_vms_for(topo, devs, opts)))
        .collect();
    let speaker_min = speakers.len().div_ceil(opts.max_speakers_per_vm as usize);
    let min_total: usize = group_min.values().sum::<usize>() + speaker_min;

    // Distribute any surplus budget proportionally to group size.
    let budget = opts
        .target_vms
        .map_or(min_total, |t| (t as usize).max(min_total));
    let surplus = budget - min_total;
    let total_devices = devices.len().max(1);

    let mut extra_left = surplus;
    let group_keys: Vec<Option<Vendor>> = groups.keys().copied().collect();
    for (gi, key) in group_keys.iter().enumerate() {
        let devs = &groups[key];
        let share = if gi + 1 == group_keys.len() {
            extra_left // last group takes the remainder
        } else {
            (surplus * devs.len() / total_devices).min(extra_left)
        };
        extra_left -= share;
        let vm_count = group_min[key] + share;
        pack_group(topo, devs, *key, vm_count, opts, &mut plan);
    }

    // Speakers: dense packing on standard VMs.
    for chunk in speakers.chunks(opts.max_speakers_per_vm as usize) {
        let idx = plan.vms.len();
        plan.vms.push(PlannedVm {
            sku: VmSku::standard_4c8g(),
            devices: vec![],
            speakers: chunk.to_vec(),
            vendor: None,
        });
        for &s in chunk {
            plan.placement.insert(s, idx);
        }
    }
    plan
}

/// The container kind a device runs as.
#[must_use]
pub fn sandbox_kind(vendor: Vendor) -> ContainerKind {
    if vendor.is_containerized() {
        ContainerKind::DeviceContainer(vendor)
    } else {
        ContainerKind::DeviceVm(vendor)
    }
}

fn sku_for(vendor: Option<Vendor>) -> VmSku {
    match vendor {
        Some(v) if !v.is_containerized() => VmSku::nested_4c16g(),
        _ => VmSku::standard_4c8g(),
    }
}

fn min_vms_for(topo: &Topology, devs: &[DeviceId], opts: &PlanOptions) -> usize {
    // Greedy first-fit respecting all three caps.
    let mut count = 1usize;
    let mut ifaces = 0u32;
    let mut n = 0u32;
    let mut ram = 0u32;
    let vendor = topo.device(devs[0]).vendor;
    let sku = sku_for(Some(vendor));
    let ram_cap = sku.ram_gb * 1024 - 512; // host reserve
    for &d in devs {
        let dev = topo.device(d);
        let di = dev.ifaces.len() as u32;
        let dram = sandbox_kind(dev.vendor).ram_mb() + ContainerKind::PhyNet.ram_mb();
        if n + 1 > opts.max_devices_per_vm
            || ifaces + di > opts.max_ifaces_per_vm
            || ram + dram > ram_cap
        {
            count += 1;
            ifaces = 0;
            n = 0;
            ram = 0;
        }
        ifaces += di;
        n += 1;
        ram += dram;
    }
    count
}

fn pack_group(
    topo: &Topology,
    devs: &[DeviceId],
    vendor: Option<Vendor>,
    vm_count: usize,
    _opts: &PlanOptions,
    plan: &mut VmPlan,
) {
    let sku = sku_for(vendor.or_else(|| devs.first().map(|&d| topo.device(d).vendor)));
    let base = plan.vms.len();
    for _ in 0..vm_count {
        plan.vms.push(PlannedVm {
            sku,
            devices: vec![],
            speakers: vec![],
            vendor,
        });
    }
    // Round-robin spread keeps per-VM load even (and interface counts
    // balanced, which is what bounds network-ready latency).
    for (i, &d) in devs.iter().enumerate() {
        let idx = base + i % vm_count;
        plan.vms[idx].devices.push(d);
        plan.placement.insert(d, idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_net::ClosParams;

    fn s_dc_ids() -> (crystalnet_net::ClosTopology, Vec<DeviceId>, Vec<DeviceId>) {
        let dc = ClosParams::s_dc().build();
        let devices: Vec<DeviceId> = dc
            .topo
            .devices()
            .filter(|(_, d)| d.role != crystalnet_net::Role::External)
            .map(|(id, _)| id)
            .collect();
        let speakers: Vec<DeviceId> = dc.externals.clone();
        (dc, devices, speakers)
    }

    #[test]
    fn vendors_never_share_a_vm() {
        let (dc, devices, speakers) = s_dc_ids();
        let plan = plan_vms(&dc.topo, &devices, &speakers, &PlanOptions::default());
        for vm in &plan.vms {
            let vendors: std::collections::HashSet<Vendor> = vm
                .devices
                .iter()
                .map(|&d| dc.topo.device(d).vendor)
                .collect();
            assert!(vendors.len() <= 1, "mixed vendors on one VM");
        }
    }

    #[test]
    fn every_device_is_placed_exactly_once() {
        let (dc, devices, speakers) = s_dc_ids();
        let plan = plan_vms(&dc.topo, &devices, &speakers, &PlanOptions::default());
        for &d in devices.iter().chain(&speakers) {
            assert!(plan.vm_of(d).is_some(), "{d} unplaced");
        }
        let placed: usize = plan
            .vms
            .iter()
            .map(|vm| vm.devices.len() + vm.speakers.len())
            .sum();
        assert_eq!(placed, devices.len() + speakers.len());
    }

    #[test]
    fn caps_are_respected() {
        let (dc, devices, speakers) = s_dc_ids();
        let opts = PlanOptions::default();
        let plan = plan_vms(&dc.topo, &devices, &speakers, &opts);
        for vm in &plan.vms {
            assert!(vm.devices.len() <= opts.max_devices_per_vm as usize);
            let ifaces: u32 = vm
                .devices
                .iter()
                .map(|&d| dc.topo.device(d).ifaces.len() as u32)
                .sum();
            assert!(ifaces <= opts.max_ifaces_per_vm);
            assert!(vm.speakers.len() <= opts.max_speakers_per_vm as usize);
        }
    }

    #[test]
    fn target_vms_spreads_load() {
        let (dc, devices, speakers) = s_dc_ids();
        let small = plan_vms(&dc.topo, &devices, &speakers, &PlanOptions::default());
        let opts = PlanOptions {
            target_vms: Some(small.vm_count() as u32 * 2),
            ..PlanOptions::default()
        };
        let big = plan_vms(&dc.topo, &devices, &speakers, &opts);
        assert!(big.vm_count() >= small.vm_count() * 2 - 2);
        let max_small = small.vms.iter().map(|v| v.devices.len()).max().unwrap();
        let max_big = big.vms.iter().map(|v| v.devices.len()).max().unwrap();
        assert!(max_big <= max_small, "more VMs must not pack denser");
    }

    #[test]
    fn vm_vendor_devices_get_nested_skus() {
        let region = crystalnet_net::RegionParams::case1().build();
        let devices: Vec<DeviceId> = region
            .wan_cores
            .iter()
            .chain(&region.backbones)
            .copied()
            .collect();
        let plan = plan_vms(&region.topo, &devices, &[], &PlanOptions::default());
        for vm in &plan.vms {
            for &d in &vm.devices {
                if !region.topo.device(d).vendor.is_containerized() {
                    assert!(vm.sku.nested_virt, "VM-image device on non-nested SKU");
                }
            }
        }
    }

    #[test]
    fn speakers_pack_fifty_per_vm() {
        let dc = ClosParams::s_dc().build();
        let speakers: Vec<DeviceId> = (0..120).map(|_| dc.externals[0]).collect();
        // 120 speaker instances (ids repeat for the packing math only).
        let plan = plan_vms(&dc.topo, &[], &speakers, &PlanOptions::default());
        assert_eq!(plan.vm_count(), 3);
    }

    #[test]
    fn hourly_cost_sums_skus() {
        let (dc, devices, speakers) = s_dc_ids();
        let plan = plan_vms(&dc.topo, &devices, &speakers, &PlanOptions::default());
        let expect: f64 = plan.vms.iter().map(|v| v.sku.usd_per_hour).sum();
        assert!((plan.hourly_cost_usd() - expect).abs() < 1e-9);
    }
}
