//! CrystalNet: the orchestrator.
//!
//! A Rust reproduction of "CrystalNet: Faithfully Emulating Large
//! Production Networks" (SOSP '17). This crate is the paper's primary
//! contribution — the cloud-scale emulation orchestrator — built on the
//! workspace's substrates: simulated cloud + PhyNet containers + VXLAN
//! overlays (`crystalnet-vnet`), vendor firmware engines
//! (`crystalnet-routing`), safe static boundaries (`crystalnet-boundary`)
//! and production-style configuration (`crystalnet-config`).
//!
//! The Table 2 API surface maps as:
//!
//! | Paper API | Here |
//! |---|---|
//! | `Prepare` | [`prepare()`] → [`PrepareOutput`] |
//! | `Mockup` | [`mockup`] → [`Emulation`] |
//! | `Clear` / `Destroy` | [`Emulation::clear`] / [`Emulation::destroy`] |
//! | `Reload` | [`Emulation::reload`] |
//! | `Connect` / `Disconnect` | [`Emulation::connect`] / [`Emulation::disconnect`] |
//! | `InjectPackets` | [`Emulation::inject_packet`] |
//! | `PullStates` / `PullConfig` / `PullPackets` | [`Emulation::pull_states`] / [`Emulation::pull_config`] / [`Emulation::pull_packets`] |
//! | `List` / `Login` | [`Emulation::list`] / [`Emulation::login_and_run`] |

#![warn(missing_docs)]

pub mod cases;
pub mod emulation;
pub mod explain;
pub mod faults;
pub mod health;
pub mod metrics;
pub mod plan;
pub mod prepare;
pub mod rehearse;
pub mod scenarios;
pub mod session;
pub mod traffic;
pub mod workflow;

pub use cases::{
    run_case1, run_case1_under_load, run_case1_with, run_case2, run_case2_with, Case1Report,
    Case2Report,
};
pub use emulation::{
    mockup, DeviceState, Emulation, EmulationError, MockupOptions, MockupOptionsBuilder, Sandbox,
    VmWorkModel,
};
pub use explain::{ExplainHop, RouteExplanation};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultReport, HealthPolicy, RetryPolicy};
pub use health::{
    correlate, incidents_jsonl, CorrelatedIncident, HealthReport, IncidentCause, PairHealth,
    CORRELATION_WINDOW,
};
pub use metrics::{JournalEvent, JournalKind, MockupMetrics, RecoveryJournal};
pub use plan::{plan_vms, sandbox_kind, PlanOptions, PlannedVm, VmPlan};
pub use prepare::{prepare, BoundaryMode, PrepareOutput, SpeakerSource};
pub use rehearse::{
    AppliedChange, ConvergenceDelta, FibChange, FibChangeKind, RehearsalReport, RehearsalStep,
};
pub use scenarios::{run_all as run_all_scenarios, RootCause, ScenarioResult};
pub use session::{EmulationFork, Snapshot};
pub use traffic::{LinkUtilisation, PairTraffic, TrafficReport};
pub use workflow::{StepOutcome, UpdateStep, ValidationLoop, ValidationReport};

/// One-stop imports for driving an emulation.
///
/// ```
/// use crystalnet::prelude::*;
/// ```
///
/// pulls in the orchestrator API (`prepare`/`mockup`, the typed
/// [`EmulationError`], the fault subsystem) together with the substrate
/// types every example ends up needing — topologies, ids, addresses,
/// management commands, virtual time — so call sites stop deep-importing
/// individual workspace crates.
pub mod prelude {
    pub use crate::emulation::{
        mockup, DeviceState, Emulation, EmulationError, MockupOptions, MockupOptionsBuilder,
        Sandbox,
    };
    pub use crate::explain::{ExplainHop, RouteExplanation};
    pub use crate::faults::{
        FaultEvent, FaultKind, FaultPlan, FaultReport, HealthPolicy, RetryPolicy,
    };
    pub use crate::health::{CorrelatedIncident, HealthReport, IncidentCause, PairHealth};
    pub use crate::metrics::{JournalEvent, JournalKind, MockupMetrics, RecoveryJournal};
    pub use crate::prepare::{prepare, BoundaryMode, PrepareOutput, SpeakerSource};
    pub use crate::rehearse::{
        AppliedChange, ConvergenceDelta, FibChange, FibChangeKind, RehearsalReport, RehearsalStep,
    };
    pub use crate::session::{EmulationFork, Snapshot};
    pub use crate::traffic::{LinkUtilisation, PairTraffic, TrafficReport};
    pub use crate::workflow::{StepOutcome, UpdateStep, ValidationLoop, ValidationReport};
    pub use crystalnet_config::{classify_diff, Change, ChangeImpact, ChangeSet, SpeakerRoute};
    pub use crystalnet_dataplane::ForwardDecision;
    pub use crystalnet_net::{
        ClosParams, ClosTopology, DeviceId, Ipv4Addr, Ipv4Prefix, LinkId, Topology,
    };
    pub use crystalnet_routing::{
        GrayFailureWitness, Incident, IncidentKind, MgmtCommand, MgmtResponse, ProbeConfig,
        ProbeOutcome, TrafficConfig, VendorProfile,
    };
    pub use crystalnet_sim::{SimDuration, SimTime};
    pub use crystalnet_telemetry::{
        trace_chrome_json, trace_jsonl, EventRecord, FieldValue, HistogramSummary, MemRecorder,
        NoopRecorder, Recorder, RunReport, SpanRecord, TraceRecord, TraceSink,
    };
    // The prepare artifact rides an `Arc` so forked emulations are
    // `Send` (PR 7 moved the spine off `Rc`); re-exported because every
    // `mockup` call site wraps its `PrepareOutput` in one.
    pub use std::sync::Arc;
}
