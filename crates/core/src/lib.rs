//! CrystalNet: the orchestrator.
//!
//! A Rust reproduction of "CrystalNet: Faithfully Emulating Large
//! Production Networks" (SOSP '17). This crate is the paper's primary
//! contribution — the cloud-scale emulation orchestrator — built on the
//! workspace's substrates: simulated cloud + PhyNet containers + VXLAN
//! overlays (`crystalnet-vnet`), vendor firmware engines
//! (`crystalnet-routing`), safe static boundaries (`crystalnet-boundary`)
//! and production-style configuration (`crystalnet-config`).
//!
//! The Table 2 API surface maps as:
//!
//! | Paper API | Here |
//! |---|---|
//! | `Prepare` | [`prepare`] → [`PrepareOutput`] |
//! | `Mockup` | [`mockup`] → [`Emulation`] |
//! | `Clear` / `Destroy` | [`Emulation::clear`] / [`Emulation::destroy`] |
//! | `Reload` | [`Emulation::reload`] |
//! | `Connect` / `Disconnect` | [`Emulation::connect`] / [`Emulation::disconnect`] |
//! | `InjectPackets` | [`Emulation::inject_packet`] |
//! | `PullStates` / `PullConfig` / `PullPackets` | [`Emulation::pull_states`] / [`Emulation::pull_config`] / [`Emulation::pull_packets`] |
//! | `List` / `Login` | [`Emulation::list`] / [`Emulation::login_and_run`] |

pub mod cases;
pub mod emulation;
pub mod metrics;
pub mod plan;
pub mod prepare;
pub mod scenarios;
pub mod workflow;

pub use cases::{run_case1, run_case2, Case1Report, Case2Report};
pub use emulation::{mockup, DeviceState, Emulation, MockupOptions, Sandbox, VmWorkModel};
pub use metrics::MockupMetrics;
pub use plan::{plan_vms, sandbox_kind, PlanOptions, PlannedVm, VmPlan};
pub use prepare::{prepare, BoundaryMode, PrepareOutput, SpeakerSource};
pub use scenarios::{run_all as run_all_scenarios, RootCause, ScenarioResult};
pub use workflow::{StepOutcome, UpdateStep, ValidationLoop, ValidationReport};
