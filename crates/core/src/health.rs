//! User-facing view of the continuous health plane: the probe-mesh
//! gauges as a canonical [`HealthReport`], and the incident timeline
//! with cause correlation.
//!
//! The runtime half — probe scheduling, watchdogs, shard fork/absorb —
//! lives in `crystalnet_routing::health` because it runs inside the
//! harness. This module renders what that runtime accumulated and adds
//! the one piece only the orchestrator can: *correlation*. An incident
//! by itself says "probe 4711 died at hop 2"; correlated against the
//! recovery journal and the change log it says "…200ms after fault
//! `link-flap #17` fired", which is what an operator acts on.

use crate::metrics::{JournalKind, RecoveryJournal};
use crystalnet_net::DeviceId;
use crystalnet_routing::health::{HealthState, Incident, IncidentKind};
use crystalnet_sim::{SimDuration, SimTime};
use serde::{Serialize, Value};

/// One probe pair's gauges: reachability, latency, and the rolling SLO
/// window. All fields are integers so the canonical export is
/// byte-stable across worker counts and platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairHealth {
    /// Probing device.
    pub src: DeviceId,
    /// Probing device's hostname.
    pub src_host: String,
    /// Probed device.
    pub dst: DeviceId,
    /// Probed device's hostname.
    pub dst_host: String,
    /// Probes completed (delivered + lost).
    pub sent: u64,
    /// Probes that reached `dst`.
    pub delivered: u64,
    /// Probes that died en route.
    pub lost: u64,
    /// Sum of delivered probes' one-way latencies (ns).
    pub latency_ns_sum: u64,
    /// Worst delivered one-way latency (ns).
    pub latency_ns_max: u64,
    /// Losses inside the current SLO window.
    pub window_lost: u64,
    /// Probes inside the current SLO window.
    pub window_len: u64,
    /// Whether the pair is currently in SLO breach.
    pub breached: bool,
}

impl Serialize for PairHealth {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("src".to_string(), Value::Uint(u64::from(self.src.0))),
            ("src_host".to_string(), Value::Str(self.src_host.clone())),
            ("dst".to_string(), Value::Uint(u64::from(self.dst.0))),
            ("dst_host".to_string(), Value::Str(self.dst_host.clone())),
            ("sent".to_string(), Value::Uint(self.sent)),
            ("delivered".to_string(), Value::Uint(self.delivered)),
            ("lost".to_string(), Value::Uint(self.lost)),
            (
                "latency_ns_sum".to_string(),
                Value::Uint(self.latency_ns_sum),
            ),
            (
                "latency_ns_max".to_string(),
                Value::Uint(self.latency_ns_max),
            ),
            ("window_lost".to_string(), Value::Uint(self.window_lost)),
            ("window_len".to_string(), Value::Uint(self.window_len)),
            ("breached".to_string(), Value::Bool(self.breached)),
        ])
    }
}

/// The probe mesh's state, rendered for export. Canonical: byte-stable
/// across reps, worker counts, and `profiling(true)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Whether the health plane was enabled for this run.
    pub enabled: bool,
    /// Probe period (zero when disabled).
    pub period: SimDuration,
    /// Probes launched (may exceed `delivered + lost` — in-flight probes
    /// at pull time are counted here only).
    pub probes_sent: u64,
    /// Probes that reached their target.
    pub probes_delivered: u64,
    /// Probes that died en route (any cause).
    pub probes_lost: u64,
    /// Incidents on the timeline.
    pub incident_count: u64,
    /// Per-pair gauges, sorted by `(src, dst)`.
    pub pairs: Vec<PairHealth>,
}

impl HealthReport {
    /// A disabled report (health plane off).
    #[must_use]
    pub fn disabled() -> Self {
        HealthReport {
            enabled: false,
            period: SimDuration::ZERO,
            probes_sent: 0,
            probes_delivered: 0,
            probes_lost: 0,
            incident_count: 0,
            pairs: Vec::new(),
        }
    }

    /// Renders the runtime state; `resolve` maps device ids to
    /// hostnames.
    #[must_use]
    pub fn from_state(state: &HealthState, resolve: impl Fn(DeviceId) -> String) -> Self {
        let pairs = state
            .pairs
            .iter()
            .map(|(&(src, dst), p)| PairHealth {
                src,
                src_host: resolve(src),
                dst,
                dst_host: resolve(dst),
                sent: p.sent,
                delivered: p.delivered,
                lost: p.lost,
                latency_ns_sum: p.latency_ns_sum,
                latency_ns_max: p.latency_ns_max,
                window_lost: p.window_lost(),
                window_len: p.window.len() as u64,
                breached: p.breached,
            })
            .collect();
        HealthReport {
            enabled: true,
            period: state.cfg.period,
            probes_sent: state.probes_sent,
            probes_delivered: state.probes_delivered,
            probes_lost: state.probes_lost,
            incident_count: state.incidents.len() as u64,
            pairs,
        }
    }

    /// Canonical JSON export: bit-identical across reps and worker
    /// counts for the same seed. Ends with a newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_value())
            .expect("health report serialization is infallible");
        s.push('\n');
        s
    }
}

impl Serialize for HealthReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("enabled".to_string(), Value::Bool(self.enabled)),
            ("period_ns".to_string(), Value::Uint(self.period.as_nanos())),
            ("probes_sent".to_string(), Value::Uint(self.probes_sent)),
            (
                "probes_delivered".to_string(),
                Value::Uint(self.probes_delivered),
            ),
            ("probes_lost".to_string(), Value::Uint(self.probes_lost)),
            (
                "incident_count".to_string(),
                Value::Uint(self.incident_count),
            ),
            (
                "pairs".to_string(),
                Value::Array(self.pairs.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

/// The plausible cause an incident was correlated against: the nearest
/// preceding journal or change-log entry within
/// [`CORRELATION_WINDOW`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncidentCause {
    /// A planned fault fired (or the health monitor detected one).
    Fault {
        /// When the fault fired.
        at: SimTime,
        /// Human-readable fault description.
        description: String,
    },
    /// A recovery action ran (reboot, quarantine, speaker restart…).
    Recovery {
        /// When the action ran.
        at: SimTime,
        /// Human-readable action description.
        description: String,
    },
    /// A `ChangeSet` was applied.
    ChangeApplied {
        /// When the change applied.
        at: SimTime,
        /// The change's summary.
        description: String,
    },
}

impl IncidentCause {
    /// When the candidate cause happened.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            IncidentCause::Fault { at, .. }
            | IncidentCause::Recovery { at, .. }
            | IncidentCause::ChangeApplied { at, .. } => *at,
        }
    }

    /// Stable label (`fault`, `recovery`, `change`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IncidentCause::Fault { .. } => "fault",
            IncidentCause::Recovery { .. } => "recovery",
            IncidentCause::ChangeApplied { .. } => "change",
        }
    }

    /// The human-readable description.
    #[must_use]
    pub fn description(&self) -> &str {
        match self {
            IncidentCause::Fault { description, .. }
            | IncidentCause::Recovery { description, .. }
            | IncidentCause::ChangeApplied { description, .. } => description,
        }
    }
}

/// An incident with hostnames resolved and its plausible cause
/// attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelatedIncident {
    /// The raw watchdog firing.
    pub incident: Incident,
    /// Hostname of the probing device.
    pub src_host: String,
    /// Hostname of the probed device.
    pub dst_host: String,
    /// Nearest preceding plausible cause within
    /// [`CORRELATION_WINDOW`], if any.
    pub cause: Option<IncidentCause>,
}

/// Version of the incident JSONL envelope emitted by
/// [`incidents_jsonl`]. The envelope (the eight keys every line carries:
/// `at_ns`, `kind`, `src`, `src_host`, `dst`, `dst_host`, `seq`,
/// `cause`) is stable within a version; *new kinds* may appear without a
/// bump because consumers dispatch on `kind` and unknown labels are
/// skippable. A bump means an existing key changed meaning or shape —
/// live-watch pipelines should pin this constant, not sniff fields.
pub const INCIDENT_SCHEMA_VERSION: u32 = 1;

/// How far back correlation looks for a plausible cause. Fault
/// propagation through BGP withdrawal cascades takes tens of seconds of
/// virtual time on large fabrics; two minutes bounds the search without
/// blaming ancient history.
pub const CORRELATION_WINDOW: SimDuration = SimDuration::from_secs(120);

/// Renders one journal entry as a candidate cause.
fn journal_cause(at: SimTime, kind: &JournalKind) -> IncidentCause {
    match kind {
        JournalKind::FaultInjected { fault } => IncidentCause::Fault {
            at,
            description: fault.clone(),
        },
        JournalKind::HeartbeatMissed { vm, consecutive } => IncidentCause::Fault {
            at,
            description: format!("heartbeat miss #{consecutive} on vm {vm}"),
        },
        JournalKind::VmDeclaredDead { vm } => IncidentCause::Fault {
            at,
            description: format!("vm {vm} declared dead"),
        },
        JournalKind::RebootAttempt { vm, attempt, .. } => IncidentCause::Recovery {
            at,
            description: format!("reboot attempt #{attempt} on vm {vm}"),
        },
        JournalKind::VmQuarantined { vm, spare } => IncidentCause::Recovery {
            at,
            description: format!("vm {vm} quarantined to spare {spare}"),
        },
        JournalKind::SpeakerRestarted { device, epoch } => IncidentCause::Recovery {
            at,
            description: format!("speaker {device} restarted (epoch {epoch})"),
        },
        JournalKind::LinkFlap { link, up } => IncidentCause::Fault {
            at,
            description: format!("link #{link} {}", if *up { "up" } else { "down" }),
        },
        JournalKind::RecoveryComplete { vm, devices, .. } => IncidentCause::Recovery {
            at,
            description: format!("recovery complete on vm {vm} ({devices} device(s))"),
        },
    }
}

/// Correlates each incident against the nearest preceding plausible
/// cause — a journal entry or an applied change — within
/// [`CORRELATION_WINDOW`]. Ties at the same instant prefer the change
/// log (an operator action is the more specific explanation than the
/// monitor noise around it).
#[must_use]
pub fn correlate(
    incidents: &[Incident],
    journal: &RecoveryJournal,
    change_log: &[(SimTime, String)],
    resolve: impl Fn(DeviceId) -> String,
) -> Vec<CorrelatedIncident> {
    let journal = journal.sorted();
    incidents
        .iter()
        .map(|inc| {
            let mut best: Option<IncidentCause> = None;
            let mut consider = |cause: IncidentCause| {
                let at = cause.at();
                if at > inc.at || inc.at.since(at) > CORRELATION_WINDOW {
                    return;
                }
                let better = match &best {
                    None => true,
                    Some(b) => at >= b.at(),
                };
                if better {
                    best = Some(cause);
                }
            };
            for ev in &journal.events {
                consider(journal_cause(ev.at, &ev.kind));
            }
            for (at, desc) in change_log {
                consider(IncidentCause::ChangeApplied {
                    at: *at,
                    description: desc.clone(),
                });
            }
            CorrelatedIncident {
                incident: inc.clone(),
                src_host: resolve(inc.src),
                dst_host: resolve(inc.dst),
                cause: best,
            }
        })
        .collect()
}

impl CorrelatedIncident {
    /// The incident as one canonical JSON object (one JSONL line).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let inc = &self.incident;
        let mut obj = vec![
            ("at_ns".to_string(), Value::Uint(inc.at.as_nanos())),
            ("kind".to_string(), Value::Str(inc.kind.label().to_string())),
            ("src".to_string(), Value::Uint(u64::from(inc.src.0))),
            ("src_host".to_string(), Value::Str(self.src_host.clone())),
            ("dst".to_string(), Value::Uint(u64::from(inc.dst.0))),
            ("dst_host".to_string(), Value::Str(self.dst_host.clone())),
            ("seq".to_string(), Value::Uint(inc.seq)),
        ];
        match &inc.kind {
            IncidentKind::Blackhole(w) => {
                obj.push(("device".to_string(), Value::Uint(u64::from(w.device.0))));
                obj.push(("hop".to_string(), Value::Uint(u64::from(w.hop))));
                obj.push((
                    "prefix".to_string(),
                    match w.prefix {
                        Some(p) => Value::Str(p.to_string()),
                        None => Value::Null,
                    },
                ));
                obj.push((
                    "prov_digest".to_string(),
                    match w.prov_digest {
                        Some(d) => Value::Uint(d),
                        None => Value::Null,
                    },
                ));
            }
            IncidentKind::ForwardingLoop { device, hop } => {
                obj.push(("device".to_string(), Value::Uint(u64::from(device.0))));
                obj.push(("hop".to_string(), Value::Uint(u64::from(*hop))));
            }
            IncidentKind::SloBreach {
                window_lost,
                window,
            } => {
                obj.push(("window_lost".to_string(), Value::Uint(*window_lost)));
                obj.push(("window".to_string(), Value::Uint(*window)));
            }
            IncidentKind::FibChurnAnomaly {
                device,
                ops,
                threshold,
            } => {
                obj.push(("device".to_string(), Value::Uint(u64::from(device.0))));
                obj.push(("ops".to_string(), Value::Uint(*ops)));
                obj.push(("threshold".to_string(), Value::Uint(*threshold)));
            }
            IncidentKind::LinkOversubscribed {
                link,
                device,
                bytes,
                capacity_bytes,
            } => {
                obj.push(("link".to_string(), Value::Uint(u64::from(link.0))));
                obj.push(("device".to_string(), Value::Uint(u64::from(device.0))));
                obj.push(("bytes".to_string(), Value::Uint(*bytes)));
                obj.push(("capacity_bytes".to_string(), Value::Uint(*capacity_bytes)));
            }
            IncidentKind::EcmpPolarisation {
                device,
                iface,
                share_pct,
                members,
            } => {
                obj.push(("device".to_string(), Value::Uint(u64::from(device.0))));
                obj.push(("iface".to_string(), Value::Uint(u64::from(*iface))));
                obj.push(("share_pct".to_string(), Value::Uint(*share_pct)));
                obj.push(("members".to_string(), Value::Uint(*members)));
            }
            IncidentKind::FlowSloBreach {
                window_lost,
                window,
            } => {
                obj.push(("window_lost".to_string(), Value::Uint(*window_lost)));
                obj.push(("window".to_string(), Value::Uint(*window)));
            }
        }
        obj.push((
            "cause".to_string(),
            match &self.cause {
                None => Value::Null,
                Some(c) => Value::Object(vec![
                    ("kind".to_string(), Value::Str(c.label().to_string())),
                    ("at_ns".to_string(), Value::Uint(c.at().as_nanos())),
                    (
                        "description".to_string(),
                        Value::Str(c.description().to_string()),
                    ),
                ]),
            },
        ));
        Value::Object(obj)
    }
}

/// Renders correlated incidents as JSONL: one compact object per line,
/// in timeline order, trailing newline when nonempty.
#[must_use]
pub fn incidents_jsonl(incidents: &[CorrelatedIncident]) -> String {
    let mut out = String::new();
    for inc in incidents {
        out.push_str(
            &serde_json::to_string(&inc.to_value()).expect("incident serialization is infallible"),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_routing::health::GrayFailureWitness;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn incident_at(s: u64) -> Incident {
        Incident {
            at: t(s),
            src: DeviceId(1),
            dst: DeviceId(2),
            seq: 7,
            kind: IncidentKind::Blackhole(GrayFailureWitness {
                device: DeviceId(3),
                hop: 2,
                prefix: None,
                prov_digest: Some(0xdead),
            }),
        }
    }

    #[test]
    fn correlation_picks_nearest_preceding_cause_within_window() {
        let mut journal = RecoveryJournal::default();
        journal.record(
            t(10),
            JournalKind::FaultInjected {
                fault: "link flap".to_string(),
            },
        );
        journal.record(t(40), JournalKind::VmDeclaredDead { vm: 0 });
        let changes = vec![(t(20), "config replace".to_string())];
        let out = correlate(&[incident_at(25)], &journal, &changes, |d| {
            format!("dev{}", d.0)
        });
        assert_eq!(out.len(), 1);
        // t=20 change is nearer than the t=10 fault; t=40 is in the future.
        match &out[0].cause {
            Some(IncidentCause::ChangeApplied { at, description }) => {
                assert_eq!(*at, t(20));
                assert_eq!(description, "config replace");
            }
            other => panic!("wrong cause: {other:?}"),
        }
        assert_eq!(out[0].src_host, "dev1");
    }

    #[test]
    fn correlation_respects_the_window_and_handles_no_cause() {
        let mut journal = RecoveryJournal::default();
        journal.record(
            t(10),
            JournalKind::FaultInjected {
                fault: "ancient".to_string(),
            },
        );
        // 200s later: outside the 120s window.
        let out = correlate(&[incident_at(210)], &journal, &[], |_| String::new());
        assert_eq!(out[0].cause, None);
    }

    #[test]
    fn jsonl_lines_carry_the_witness_and_cause() {
        let mut journal = RecoveryJournal::default();
        journal.record(
            t(24),
            JournalKind::FaultInjected {
                fault: "silent blackhole".to_string(),
            },
        );
        let out = correlate(&[incident_at(25)], &journal, &[], |d| format!("d{}", d.0));
        let jsonl = incidents_jsonl(&out);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"kind\":\"blackhole\""), "{jsonl}");
        assert!(jsonl.contains("\"prov_digest\":57005"), "{jsonl}");
        assert!(jsonl.contains("silent blackhole"), "{jsonl}");
        assert!(incidents_jsonl(&[]).is_empty());
    }

    #[test]
    fn disabled_report_is_stable() {
        let r = HealthReport::disabled();
        assert!(!r.enabled);
        assert!(r.to_json().contains("\"enabled\": false"));
    }
}
