//! Property tests: render → parse round-trips for arbitrary configurations.

use crystalnet_config::*;
use crystalnet_net::{Asn, Ipv4Addr, Ipv4Cidr, Ipv4Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Ipv4Prefix::new(Ipv4Addr(a), l))
}

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9-]{0,8}"
}

fn arb_interface() -> impl Strategy<Value = InterfaceConfig> {
    (
        0u32..16,
        prop::option::of((any::<u32>(), 8u8..=32)),
        any::<bool>(),
        prop::option::of(arb_name()),
    )
        .prop_map(|(i, addr, shutdown, acl)| InterfaceConfig {
            name: format!("et{i}"),
            addr: addr.map(|(a, l)| Ipv4Cidr::new(Ipv4Addr(a), l)),
            shutdown,
            acl_in: acl,
            acl_out: None,
        })
}

fn arb_neighbor() -> impl Strategy<Value = NeighborConfig> {
    (
        any::<u32>(),
        1u32..65000,
        any::<bool>(),
        prop::option::of(arb_name()),
    )
        .prop_map(|(addr, asn, shutdown, rm)| NeighborConfig {
            addr: Ipv4Addr(addr),
            remote_as: Asn(asn),
            shutdown,
            route_map_in: rm,
            route_map_out: None,
        })
}

fn arb_config() -> impl Strategy<Value = DeviceConfig> {
    (
        "[a-z][a-z0-9-]{0,12}",
        prop::collection::vec(arb_interface(), 0..5),
        prop::collection::vec(arb_prefix(), 0..4),
        prop::collection::vec(arb_neighbor(), 0..4),
        prop::option::of(1usize..100_000),
    )
        .prop_map(|(hostname, mut interfaces, networks, mut neighbors, fib)| {
            // Interface names and neighbor addresses must be unique for the
            // parse to be unambiguous (as on real devices).
            interfaces.sort_by(|a, b| a.name.cmp(&b.name));
            interfaces.dedup_by(|a, b| a.name == b.name);
            neighbors.sort_by_key(|n| n.addr);
            neighbors.dedup_by(|a, b| a.addr == b.addr);
            let mut cfg = DeviceConfig {
                hostname,
                interfaces,
                fib_capacity: fib,
                ..DeviceConfig::default()
            };
            cfg.bgp = Some(BgpConfig {
                asn: Asn(65001),
                router_id: Ipv4Addr::new(1, 2, 3, 4),
                max_paths: 64,
                networks,
                aggregates: vec![],
                neighbors,
            });
            // Route maps / ACLs referenced by names must exist for semantic
            // sanity but the parser does not enforce it; add one of each.
            cfg.route_maps.insert(
                "RM".into(),
                RouteMap {
                    entries: vec![RouteMapEntry {
                        seq: 10,
                        action: Action::Permit,
                        matches: vec![RouteMatch::PrefixList("PL".into())],
                        sets: vec![RouteSet::Med(5)],
                    }],
                },
            );
            cfg.prefix_lists.insert(
                "PL".into(),
                PrefixList {
                    entries: vec![PrefixListEntry {
                        seq: 5,
                        action: Action::Permit,
                        prefix: Ipv4Prefix::DEFAULT,
                        ge: None,
                        le: Some(32),
                    }],
                },
            );
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated configuration survives a render → parse round trip.
    /// Referenced route maps in neighbors must be declared; we only
    /// reference the always-present "RM".
    #[test]
    fn render_parse_round_trip(mut cfg in arb_config()) {
        if let Some(bgp) = cfg.bgp.as_mut() {
            for n in bgp.neighbors.iter_mut() {
                if n.route_map_in.is_some() {
                    n.route_map_in = Some("RM".into());
                }
            }
        }
        let text = render(&cfg);
        let back = parse_config(&text).expect("rendered config must parse");
        prop_assert_eq!(cfg, back);
    }

    /// The parser rejects any single-line garbage statement.
    #[test]
    fn garbage_lines_are_rejected(word in "[a-z]{3,10}") {
        prop_assume!(![
            "hostname", "username", "interface", "router", "ip",
            "route-map", "shutdown",
        ].contains(&word.as_str()));
        let r = parse_config(&format!("{word} something\n"));
        prop_assert!(r.is_err());
    }
}
