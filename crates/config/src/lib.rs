//! Vendor-style device configuration for the CrystalNet reproduction.
//!
//! CrystalNet loads *production configurations* into emulated devices and
//! lets operators change them with their usual tools, so configuration is
//! a first-class artifact here: an AST ([`DeviceConfig`]), an industry-CLI
//! text renderer and parser, a Robotron-style generator that produces the
//! initial configs from a topology snapshot, and a diff engine backing
//! `PullConfig`/rollback workflows.

#![warn(missing_docs)]

pub mod ast;
pub mod changeset;
pub mod diff;
pub mod generate;
pub mod parse;
pub mod render;

pub use ast::{
    Acl,
    AclEntry,
    Action,
    AggregateConfig,
    BgpConfig,
    Credentials,
    DeviceConfig,
    InterfaceConfig,
    NeighborConfig,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapEntry,
    RouteMatch,
    RouteSet, //
};
pub use changeset::{
    classify_diff, classify_ripple, Change, ChangeImpact, ChangeSet, SpeakerRoute,
};
pub use diff::{config_diff, ConfigDiff, LineChange, SemanticChange};
pub use generate::{generate_all, generate_device, DEFAULT_MAX_PATHS};
pub use parse::{parse_config, ParseError};
pub use render::render;
