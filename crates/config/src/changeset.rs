//! Typed change sets for incremental rehearsal (§2, §7, Fig. 3).
//!
//! A rehearsal step is not "a new config file": it is a *change* — a
//! config edit on one device, a link drain, a device decommission, a new
//! route set on a boundary speaker. This module turns those operator
//! intents into a typed [`ChangeSet`] that `Emulation::apply_change`
//! consumes, and classifies each config edit by its blast radius: a
//! policy-only edit can be applied as a *soft refresh* (BGP sessions and
//! Adj-RIB-In survive, RFC 2918-style route refresh replays the inputs),
//! while neighbor/interface/platform edits force a full *session reset*
//! (the `ReplaceConfig` path).

use crate::diff::{ConfigDiff, SemanticChange};
use crate::DeviceConfig;
use crystalnet_net::{Asn, DeviceId, Ipv4Prefix, LinkId};
use serde::{Deserialize, Serialize};

/// How disruptive a configuration diff is to the running control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeImpact {
    /// The diff is empty: nothing to do, the dirty set is empty.
    NoOp,
    /// Only policy objects (route maps, prefix lists, ACLs), originated
    /// networks, aggregates, or cosmetic text changed. Sessions and
    /// Adj-RIB-In state survive; the device re-runs import/export policy
    /// and asks established peers to replay their announcements.
    SoftRefresh,
    /// Neighbor definitions, interfaces, or platform limits changed.
    /// The device's control plane is reset and rebooted with the new
    /// configuration (sessions flap, tables rebuild).
    SessionReset,
}

/// Classifies a [`ConfigDiff`] by the least disruptive mechanism that can
/// apply it faithfully.
///
/// The rule is conservative: any semantic change that alters *who the
/// device talks to* ([`SemanticChange::NeighborChanged`],
/// [`SemanticChange::InterfaceChanged`]) or *what hardware it models*
/// ([`SemanticChange::PlatformChanged`]) needs a session reset, because
/// the running sessions were negotiated under the old definitions.
/// Everything else — policy, networks, aggregates, or pure text edits
/// (hostname, credentials) — is expressible as a soft refresh.
#[must_use]
pub fn classify_diff(diff: &ConfigDiff) -> ChangeImpact {
    if diff.is_empty() {
        return ChangeImpact::NoOp;
    }
    let needs_reset = diff.semantic.iter().any(|c| {
        matches!(
            c,
            SemanticChange::NeighborChanged(_)
                | SemanticChange::InterfaceChanged(_)
                | SemanticChange::PlatformChanged(_)
        )
    });
    if needs_reset {
        ChangeImpact::SessionReset
    } else {
        ChangeImpact::SoftRefresh
    }
}

/// How far a configuration diff's effects can ripple through the fabric
/// — the [`RippleScope`](crystalnet_net::RippleScope) its dirty-region
/// seed should carry.
///
/// The rule is conservative: anything that can alter what the device
/// *announces or selects* — originations, aggregates, routing policy
/// (route maps and prefix lists feed best-path selection, and a changed
/// selection is re-exported), neighbor/interface/platform changes —
/// ripples without a structural bound and gets
/// [`RippleScope::Fabric`](crystalnet_net::RippleScope::Fabric). Only
/// diffs confined to dataplane filtering (ACLs, which never touch the
/// RIB) or cosmetic text (hostname, credentials — no semantic entries
/// at all) are local: peers replay unchanged announcements over
/// surviving sessions, so the blast radius is the device and its
/// immediate neighbors
/// ([`RippleScope::Neighbors`](crystalnet_net::RippleScope::Neighbors)).
#[must_use]
pub fn classify_ripple(diff: &ConfigDiff) -> crystalnet_net::RippleScope {
    let unbounded = diff
        .semantic
        .iter()
        .any(|c| !matches!(c, SemanticChange::PolicyChanged(s) if s == "acl"));
    if unbounded {
        crystalnet_net::RippleScope::Fabric
    } else {
        crystalnet_net::RippleScope::Neighbors
    }
}

/// One route in a speaker's replacement script, in config-level terms
/// (the emulation layer turns this into full BGP path attributes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpeakerRoute {
    /// The announced prefix.
    pub prefix: Ipv4Prefix,
    /// The `AS_PATH` the speaker presents (leftmost = the speaker's AS).
    pub as_path: Vec<Asn>,
    /// Multi-exit discriminator (0 when the operator does not care).
    pub med: u32,
}

/// One operator-visible change.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// Replace a device's configuration. The mechanism (soft refresh vs.
    /// session reset) is chosen by diffing against the running config
    /// with [`classify_diff`].
    ConfigUpdate {
        /// The device being reconfigured.
        device: DeviceId,
        /// The complete new configuration.
        config: Box<DeviceConfig>,
    },
    /// Administratively bring a link down (a drain rehearsal).
    LinkDown(LinkId),
    /// Bring a previously drained link back up.
    LinkUp(LinkId),
    /// Decommission a device: its control plane stops and every adjacent
    /// link goes down.
    DeviceRemove(DeviceId),
    /// Replace a boundary speaker's announcement script (e.g. rehearse a
    /// WAN-side route change). Applied to every session the speaker runs.
    SpeakerRouteSwap {
        /// The speaker device.
        device: DeviceId,
        /// The complete new route set.
        routes: Vec<SpeakerRoute>,
    },
}

impl Change {
    /// The devices this change directly perturbs — the seeds from which
    /// the dirty set is grown. Link changes seed nothing here; the
    /// emulation resolves the link's endpoints from the topology.
    #[must_use]
    pub fn seed_devices(&self) -> Vec<DeviceId> {
        match self {
            Change::ConfigUpdate { device, .. }
            | Change::DeviceRemove(device)
            | Change::SpeakerRouteSwap { device, .. } => vec![*device],
            Change::LinkDown(_) | Change::LinkUp(_) => vec![],
        }
    }

    /// The link this change perturbs, if any.
    #[must_use]
    pub fn seed_link(&self) -> Option<LinkId> {
        match self {
            Change::LinkDown(l) | Change::LinkUp(l) => Some(*l),
            _ => None,
        }
    }

    /// A short human-readable label for journals and telemetry spans.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Change::ConfigUpdate { .. } => "config-update",
            Change::LinkDown(_) => "link-down",
            Change::LinkUp(_) => "link-up",
            Change::DeviceRemove(_) => "device-remove",
            Change::SpeakerRouteSwap { .. } => "speaker-route-swap",
        }
    }
}

/// An ordered list of changes applied as one rehearsal step.
///
/// The changes are applied together at the same virtual instant and the
/// network re-converges once; a multi-step plan is a sequence of
/// `ChangeSet`s (see `Emulation::rehearse`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChangeSet {
    /// The changes, in application order.
    pub changes: Vec<Change>,
}

impl ChangeSet {
    /// An empty change set (applying it is a no-op).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the set contains no changes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Adds a config replacement for `device`.
    #[must_use]
    pub fn config_update(mut self, device: DeviceId, config: DeviceConfig) -> Self {
        self.changes.push(Change::ConfigUpdate {
            device,
            config: Box::new(config),
        });
        self
    }

    /// Adds a link drain.
    #[must_use]
    pub fn link_down(mut self, link: LinkId) -> Self {
        self.changes.push(Change::LinkDown(link));
        self
    }

    /// Adds a link restore.
    #[must_use]
    pub fn link_up(mut self, link: LinkId) -> Self {
        self.changes.push(Change::LinkUp(link));
        self
    }

    /// Adds a device decommission.
    #[must_use]
    pub fn device_remove(mut self, device: DeviceId) -> Self {
        self.changes.push(Change::DeviceRemove(device));
        self
    }

    /// Adds a speaker script replacement.
    #[must_use]
    pub fn speaker_route_swap(mut self, device: DeviceId, routes: Vec<SpeakerRoute>) -> Self {
        self.changes
            .push(Change::SpeakerRouteSwap { device, routes });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{NeighborConfig, RouteMap, RouteMapEntry};
    use crate::diff::config_diff;
    use crate::Action;

    fn base() -> DeviceConfig {
        DeviceConfig {
            hostname: "r1".into(),
            bgp: Some(crate::BgpConfig {
                asn: Asn(65000),
                router_id: "172.16.0.1".parse().unwrap(),
                max_paths: 64,
                networks: vec!["10.0.0.0/24".parse().unwrap()],
                aggregates: vec![],
                neighbors: vec![NeighborConfig {
                    addr: "100.64.0.1".parse().unwrap(),
                    remote_as: Asn(65100),
                    shutdown: false,
                    route_map_in: None,
                    route_map_out: None,
                }],
            }),
            ..DeviceConfig::default()
        }
    }

    #[test]
    fn empty_diff_is_noop() {
        let d = config_diff(&base(), &base());
        assert_eq!(classify_diff(&d), ChangeImpact::NoOp);
    }

    #[test]
    fn route_map_only_edit_is_soft_refresh() {
        let old = base();
        let mut new = base();
        new.route_maps.insert(
            "DENY-ALL".into(),
            RouteMap {
                entries: vec![RouteMapEntry {
                    seq: 10,
                    action: Action::Deny,
                    matches: vec![],
                    sets: vec![],
                }],
            },
        );
        let d = config_diff(&old, &new);
        assert_eq!(classify_diff(&d), ChangeImpact::SoftRefresh);
    }

    #[test]
    fn acl_only_edit_is_soft_refresh() {
        let old = base();
        let mut new = base();
        new.acls.insert(
            "MGMT-ONLY".into(),
            crate::Acl {
                entries: vec![crate::AclEntry {
                    seq: 10,
                    action: Action::Permit,
                    src: "10.0.0.0/8".parse().unwrap(),
                    dst: "0.0.0.0/0".parse().unwrap(),
                }],
            },
        );
        let d = config_diff(&old, &new);
        assert!(d
            .semantic
            .iter()
            .any(|c| matches!(c, crate::SemanticChange::PolicyChanged(s) if s == "acl")));
        assert_eq!(classify_diff(&d), ChangeImpact::SoftRefresh);
    }

    #[test]
    fn interface_edit_is_session_reset() {
        let old = base();
        let mut new = base();
        new.interfaces.push(crate::InterfaceConfig {
            name: "et9".into(),
            addr: None,
            shutdown: false,
            acl_in: None,
            acl_out: None,
        });
        let d = config_diff(&old, &new);
        assert_eq!(classify_diff(&d), ChangeImpact::SessionReset);
    }

    #[test]
    fn mixed_policy_and_neighbor_edit_is_session_reset() {
        // A reset-requiring change dominates a soft one in the same diff.
        let old = base();
        let mut new = base();
        new.route_maps.insert(
            "DENY-ALL".into(),
            RouteMap {
                entries: vec![RouteMapEntry {
                    seq: 10,
                    action: Action::Deny,
                    matches: vec![],
                    sets: vec![],
                }],
            },
        );
        new.bgp.as_mut().unwrap().neighbors[0].shutdown = true;
        let d = config_diff(&old, &new);
        assert_eq!(classify_diff(&d), ChangeImpact::SessionReset);
    }

    #[test]
    fn network_edit_is_soft_refresh() {
        let old = base();
        let mut new = base();
        new.bgp
            .as_mut()
            .unwrap()
            .networks
            .push("10.9.0.0/24".parse().unwrap());
        let d = config_diff(&old, &new);
        assert_eq!(classify_diff(&d), ChangeImpact::SoftRefresh);
    }

    #[test]
    fn cosmetic_hostname_edit_is_soft_refresh() {
        let old = base();
        let mut new = base();
        new.hostname = "r1-renamed".into();
        let d = config_diff(&old, &new);
        assert!(!d.is_empty());
        assert_eq!(classify_diff(&d), ChangeImpact::SoftRefresh);
    }

    #[test]
    fn neighbor_edit_is_session_reset() {
        let old = base();
        let mut new = base();
        new.bgp
            .as_mut()
            .unwrap()
            .neighbor_mut("100.64.0.1".parse().unwrap())
            .unwrap()
            .shutdown = true;
        let d = config_diff(&old, &new);
        assert_eq!(classify_diff(&d), ChangeImpact::SessionReset);
    }

    #[test]
    fn fib_capacity_edit_is_session_reset() {
        let old = base();
        let mut new = base();
        new.fib_capacity = Some(128);
        let d = config_diff(&old, &new);
        assert_eq!(classify_diff(&d), ChangeImpact::SessionReset);
    }

    #[test]
    fn change_seeds_and_kinds() {
        let cs = ChangeSet::new()
            .config_update(DeviceId(3), base())
            .link_down(LinkId(7))
            .device_remove(DeviceId(5));
        assert_eq!(cs.changes[0].seed_devices(), vec![DeviceId(3)]);
        assert_eq!(cs.changes[1].seed_link(), Some(LinkId(7)));
        assert_eq!(cs.changes[1].seed_devices(), vec![]);
        assert_eq!(cs.changes[2].kind(), "device-remove");
        assert!(!cs.is_empty());
        assert!(ChangeSet::new().is_empty());
    }
}
