//! Renders a [`DeviceConfig`] to vendor-CLI text.
//!
//! The emitted syntax is the conventional industry style (`router bgp`,
//! `ip prefix-list`, `route-map ... permit 10`), so operators' habits —
//! and their typos, which CrystalNet exists to catch — transfer directly.

use crate::ast::{
    Acl,
    Action,
    DeviceConfig,
    PrefixList,
    RouteMap,
    RouteMatch,
    RouteSet, //
};
use std::fmt::Write as _;

impl Action {
    fn keyword(self) -> &'static str {
        match self {
            Action::Permit => "permit",
            Action::Deny => "deny",
        }
    }
}

/// Renders the full configuration text.
#[must_use]
pub fn render(cfg: &DeviceConfig) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "hostname {}", cfg.hostname);
    if let Some(c) = &cfg.credentials {
        let _ = writeln!(w, "username {} password {}", c.user, c.password);
    }
    if let Some(cap) = cfg.fib_capacity {
        let _ = writeln!(w, "fib-capacity {cap}");
    }
    for i in &cfg.interfaces {
        let _ = writeln!(w, "!");
        let _ = writeln!(w, "interface {}", i.name);
        if let Some(addr) = i.addr {
            let _ = writeln!(w, " ip address {addr}");
        }
        if let Some(acl) = &i.acl_in {
            let _ = writeln!(w, " ip access-group {acl} in");
        }
        if let Some(acl) = &i.acl_out {
            let _ = writeln!(w, " ip access-group {acl} out");
        }
        if i.shutdown {
            let _ = writeln!(w, " shutdown");
        }
    }
    if let Some(bgp) = &cfg.bgp {
        let _ = writeln!(w, "!");
        let _ = writeln!(w, "router bgp {}", bgp.asn.0);
        let _ = writeln!(w, " router-id {}", bgp.router_id);
        let _ = writeln!(w, " maximum-paths {}", bgp.max_paths);
        for n in &bgp.networks {
            let _ = writeln!(w, " network {n}");
        }
        for a in &bgp.aggregates {
            let suffix = if a.summary_only { " summary-only" } else { "" };
            let _ = writeln!(w, " aggregate-address {}{suffix}", a.prefix);
        }
        for n in &bgp.neighbors {
            let _ = writeln!(w, " neighbor {} remote-as {}", n.addr, n.remote_as.0);
            if let Some(rm) = &n.route_map_in {
                let _ = writeln!(w, " neighbor {} route-map {rm} in", n.addr);
            }
            if let Some(rm) = &n.route_map_out {
                let _ = writeln!(w, " neighbor {} route-map {rm} out", n.addr);
            }
            if n.shutdown {
                let _ = writeln!(w, " neighbor {} shutdown", n.addr);
            }
        }
    }
    for (name, pl) in &cfg.prefix_lists {
        let _ = writeln!(w, "!");
        render_prefix_list(w, name, pl);
    }
    for (name, rm) in &cfg.route_maps {
        let _ = writeln!(w, "!");
        render_route_map(w, name, rm);
    }
    for (name, acl) in &cfg.acls {
        let _ = writeln!(w, "!");
        render_acl(w, name, acl);
    }
    out
}

fn render_prefix_list(w: &mut String, name: &str, pl: &PrefixList) {
    for e in &pl.entries {
        let mut line = format!(
            "ip prefix-list {name} seq {} {} {}",
            e.seq,
            e.action.keyword(),
            e.prefix
        );
        if let Some(ge) = e.ge {
            let _ = write!(line, " ge {ge}");
        }
        if let Some(le) = e.le {
            let _ = write!(line, " le {le}");
        }
        let _ = writeln!(w, "{line}");
    }
}

fn render_route_map(w: &mut String, name: &str, rm: &RouteMap) {
    for e in &rm.entries {
        let _ = writeln!(w, "route-map {name} {} {}", e.action.keyword(), e.seq);
        for m in &e.matches {
            match m {
                RouteMatch::PrefixList(pl) => {
                    let _ = writeln!(w, " match ip address prefix-list {pl}");
                }
                RouteMatch::AsPathContains(asn) => {
                    let _ = writeln!(w, " match as-path contains {}", asn.0);
                }
                RouteMatch::Community(c) => {
                    let _ = writeln!(w, " match community {c}");
                }
            }
        }
        for s in &e.sets {
            match s {
                RouteSet::LocalPref(v) => {
                    let _ = writeln!(w, " set local-preference {v}");
                }
                RouteSet::Med(v) => {
                    let _ = writeln!(w, " set med {v}");
                }
                RouteSet::AsPathPrepend(n) => {
                    let _ = writeln!(w, " set as-path prepend {n}");
                }
                RouteSet::Community(c) => {
                    let _ = writeln!(w, " set community {c}");
                }
            }
        }
    }
}

fn render_acl(w: &mut String, name: &str, acl: &Acl) {
    let _ = writeln!(w, "ip access-list {name}");
    for e in &acl.entries {
        let _ = writeln!(w, " {} {} {} {}", e.seq, e.action.keyword(), e.src, e.dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crystalnet_net::{Asn, Ipv4Prefix};

    #[test]
    fn renders_every_section() {
        let mut cfg = DeviceConfig {
            hostname: "leaf1".into(),
            credentials: Some(Credentials {
                user: "crystal".into(),
                password: "net".into(),
            }),
            fib_capacity: Some(1000),
            ..DeviceConfig::default()
        };
        cfg.interfaces.push(InterfaceConfig {
            name: "et0".into(),
            addr: Some("100.64.0.2/31".parse().unwrap()),
            shutdown: true,
            acl_in: Some("ACL1".into()),
            acl_out: None,
        });
        cfg.bgp = Some(BgpConfig {
            asn: Asn(65200),
            router_id: "172.16.0.5".parse().unwrap(),
            max_paths: 64,
            networks: vec!["10.1.2.0/24".parse().unwrap()],
            aggregates: vec![AggregateConfig {
                prefix: "10.1.0.0/16".parse().unwrap(),
                summary_only: true,
            }],
            neighbors: vec![NeighborConfig {
                addr: "100.64.0.3".parse().unwrap(),
                remote_as: Asn(65100),
                shutdown: false,
                route_map_in: None,
                route_map_out: Some("RM-OUT".into()),
            }],
        });
        cfg.prefix_lists.insert(
            "PL".into(),
            PrefixList {
                entries: vec![PrefixListEntry {
                    seq: 5,
                    action: Action::Permit,
                    prefix: "10.0.0.0/8".parse::<Ipv4Prefix>().unwrap(),
                    ge: Some(16),
                    le: Some(24),
                }],
            },
        );
        cfg.route_maps.insert(
            "RM-OUT".into(),
            RouteMap {
                entries: vec![RouteMapEntry {
                    seq: 10,
                    action: Action::Permit,
                    matches: vec![RouteMatch::PrefixList("PL".into())],
                    sets: vec![RouteSet::LocalPref(200), RouteSet::AsPathPrepend(2)],
                }],
            },
        );
        cfg.acls.insert(
            "ACL1".into(),
            Acl {
                entries: vec![AclEntry {
                    seq: 10,
                    action: Action::Deny,
                    src: "10.0.0.0/2".parse().unwrap(),
                    dst: Ipv4Prefix::DEFAULT,
                }],
            },
        );
        let text = render(&cfg);
        for needle in [
            "hostname leaf1",
            "username crystal password net",
            "fib-capacity 1000",
            "interface et0",
            " ip address 100.64.0.2/31",
            " ip access-group ACL1 in",
            " shutdown",
            "router bgp 65200",
            " router-id 172.16.0.5",
            " maximum-paths 64",
            " network 10.1.2.0/24",
            " aggregate-address 10.1.0.0/16 summary-only",
            " neighbor 100.64.0.3 remote-as 65100",
            " neighbor 100.64.0.3 route-map RM-OUT out",
            "ip prefix-list PL seq 5 permit 10.0.0.0/8 ge 16 le 24",
            "route-map RM-OUT permit 10",
            " match ip address prefix-list PL",
            " set local-preference 200",
            " set as-path prepend 2",
            "ip access-list ACL1",
            // `10.0.0.0/2` canonicalizes to `0.0.0.0/2` — exactly why the
            // §2 typo'd ACL swallowed most of the address space.
            " 10 deny 0.0.0.0/2 0.0.0.0/0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn minimal_config_renders() {
        let cfg = DeviceConfig {
            hostname: "x".into(),
            ..DeviceConfig::default()
        };
        assert_eq!(render(&cfg), "hostname x\n");
    }
}
