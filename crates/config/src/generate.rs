//! Generates production-style configurations from a topology.
//!
//! The paper's devices "are initially configured automatically, using a
//! configuration generator similar to [Propane/Robotron]" (§2). This module
//! is that generator for the reproduction: given a topology snapshot it
//! emits per-device configurations — interface addressing, eBGP sessions
//! for every link, originated networks, and ECMP settings.

use crate::ast::{BgpConfig, Credentials, DeviceConfig, InterfaceConfig, NeighborConfig};
use crystalnet_net::{DeviceId, Role, Topology};

/// ECMP width configured on fabric devices (`maximum-paths`).
pub const DEFAULT_MAX_PATHS: u32 = 64;

/// Generates the configuration for one device.
///
/// Every linked interface gets an address stanza and an eBGP neighbor
/// statement pointing at the peer's interface address and AS.
#[must_use]
pub fn generate_device(topo: &Topology, id: DeviceId) -> DeviceConfig {
    let dev = topo.device(id);
    let mut cfg = DeviceConfig {
        hostname: dev.name.clone(),
        credentials: Some(Credentials {
            user: "crystal".into(),
            password: "emulation".into(),
        }),
        ..DeviceConfig::default()
    };

    for iface in &dev.ifaces {
        cfg.interfaces.push(InterfaceConfig {
            name: iface.name.clone(),
            addr: iface.addr,
            shutdown: false,
            acl_in: None,
            acl_out: None,
        });
    }

    let mut bgp = BgpConfig {
        asn: dev.asn,
        router_id: dev.loopback,
        max_paths: DEFAULT_MAX_PATHS,
        networks: dev.originated.clone(),
        aggregates: vec![],
        neighbors: vec![],
    };
    for (_, local, remote) in topo.neighbors(id) {
        let peer_dev = topo.device(remote.device);
        let peer_iface = &peer_dev.ifaces[remote.iface as usize];
        let (Some(_), Some(peer_addr)) = (dev.ifaces[local.iface as usize].addr, peer_iface.addr)
        else {
            continue; // unnumbered links carry no BGP session
        };
        bgp.neighbors.push(NeighborConfig {
            addr: peer_addr.addr,
            remote_as: peer_dev.asn,
            shutdown: false,
            route_map_in: None,
            route_map_out: None,
        });
    }
    cfg.bgp = Some(bgp);
    cfg
}

/// Generates configurations for every non-external device.
///
/// External devices are outside the administrative domain — production
/// cannot snapshot their configuration, which is exactly why CrystalNet
/// needs speaker devices (§5).
#[must_use]
pub fn generate_all(topo: &Topology) -> Vec<(DeviceId, DeviceConfig)> {
    topo.devices()
        .filter(|(_, d)| d.role != Role::External)
        .map(|(id, _)| (id, generate_device(topo, id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_net::ClosParams;

    #[test]
    fn tor_config_has_pod_leaf_neighbors_and_networks() {
        let dc = ClosParams::s_dc().build();
        let tor = dc.pods[0].tors[0];
        let cfg = generate_device(&dc.topo, tor);
        assert_eq!(cfg.hostname, dc.topo.device(tor).name);
        let bgp = cfg.bgp.as_ref().unwrap();
        // One neighbor per leaf in the pod.
        assert_eq!(bgp.neighbors.len(), dc.pods[0].leaves.len());
        // Originates loopback + server /24.
        assert_eq!(bgp.networks.len(), 2);
        assert!(bgp.networks.iter().any(|p| p.len() == 24));
        assert_eq!(bgp.max_paths, DEFAULT_MAX_PATHS);
        // Neighbor remote-as points at the leaf AS.
        let leaf_asn = dc.topo.device(dc.pods[0].leaves[0]).asn;
        assert!(bgp.neighbors.iter().all(|n| n.remote_as == leaf_asn));
    }

    #[test]
    fn neighbor_addresses_are_the_peer_side_of_each_p31() {
        let dc = ClosParams::s_dc().build();
        let leaf = dc.pods[0].leaves[0];
        let cfg = generate_device(&dc.topo, leaf);
        let bgp = cfg.bgp.unwrap();
        for (_, local, remote) in dc.topo.neighbors(leaf) {
            let my = dc.topo.device(leaf).ifaces[local.iface as usize]
                .addr
                .unwrap();
            let peer = dc.topo.device(remote.device).ifaces[remote.iface as usize]
                .addr
                .unwrap();
            let n = bgp
                .neighbors
                .iter()
                .find(|n| n.addr == peer.addr)
                .expect("neighbor for each link");
            assert_eq!(n.remote_as, dc.topo.device(remote.device).asn);
            assert!(my.same_subnet(peer));
        }
    }

    #[test]
    fn generate_all_skips_externals() {
        let dc = ClosParams::s_dc().build();
        let cfgs = generate_all(&dc.topo);
        assert_eq!(cfgs.len(), dc.internal_device_count());
        for (id, cfg) in &cfgs {
            assert_eq!(cfg.hostname, dc.topo.device(*id).name);
            assert!(cfg.bgp.is_some());
        }
    }

    #[test]
    fn config_text_round_trips_through_parser() {
        let dc = ClosParams::s_dc().build();
        let spine = dc.spine_groups[0][0];
        let cfg = generate_device(&dc.topo, spine);
        let text = crate::render::render(&cfg);
        let back = crate::parse::parse_config(&text).unwrap();
        assert_eq!(cfg, back);
    }
}
