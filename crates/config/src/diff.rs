//! Configuration diffing for validation workflows.
//!
//! The Figure 3 loop reverts a failed step with `Reload(original)` and
//! `PullConfig` backs up the running configuration for rollback. Operators
//! inspect *what changed* between two configurations; this module computes
//! a line-level diff plus a semantic summary of BGP-visible changes.

use crate::ast::DeviceConfig;
use crate::render::render;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One line-level change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineChange {
    /// Present only in the new configuration.
    Added(String),
    /// Present only in the old configuration.
    Removed(String),
}

/// A semantic change visible to the control plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SemanticChange {
    /// A BGP neighbor appeared or disappeared, or its session-affecting
    /// attributes changed.
    NeighborChanged(String),
    /// An originated network was added or removed.
    NetworkChanged(String),
    /// An aggregate was added or removed.
    AggregateChanged(String),
    /// An interface came up, went down, or was renumbered.
    InterfaceChanged(String),
    /// Policy objects (route maps, prefix lists, ACLs) changed.
    PolicyChanged(String),
    /// Platform limits changed (e.g. FIB capacity).
    PlatformChanged(String),
}

/// The diff between two configurations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigDiff {
    /// Line-level changes (order: removals then additions).
    pub lines: Vec<LineChange>,
    /// Control-plane-visible change summary.
    pub semantic: Vec<SemanticChange>,
}

impl ConfigDiff {
    /// Whether the two configurations are identical.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Computes the diff from `old` to `new`.
#[must_use]
pub fn config_diff(old: &DeviceConfig, new: &DeviceConfig) -> ConfigDiff {
    let old_text = render(old);
    let new_text = render(new);
    let old_lines: BTreeSet<String> = old_text
        .lines()
        .filter(|l| !l.trim().is_empty() && l.trim() != "!")
        .map(str::to_string)
        .collect();
    let new_lines: BTreeSet<String> = new_text
        .lines()
        .filter(|l| !l.trim().is_empty() && l.trim() != "!")
        .map(str::to_string)
        .collect();

    let mut lines = Vec::new();
    for l in old_lines.difference(&new_lines) {
        lines.push(LineChange::Removed(l.clone()));
    }
    for l in new_lines.difference(&old_lines) {
        lines.push(LineChange::Added(l.clone()));
    }

    let mut semantic = Vec::new();
    let (ob, nb) = (old.bgp.as_ref(), new.bgp.as_ref());
    if let (Some(ob), Some(nb)) = (ob, nb) {
        for n in &nb.neighbors {
            match ob.neighbor(n.addr) {
                None => semantic.push(SemanticChange::NeighborChanged(format!("+{}", n.addr))),
                Some(o) if o != n => {
                    semantic.push(SemanticChange::NeighborChanged(format!("~{}", n.addr)));
                }
                _ => {}
            }
        }
        for o in &ob.neighbors {
            if nb.neighbor(o.addr).is_none() {
                semantic.push(SemanticChange::NeighborChanged(format!("-{}", o.addr)));
            }
        }
        for p in &nb.networks {
            if !ob.networks.contains(p) {
                semantic.push(SemanticChange::NetworkChanged(format!("+{p}")));
            }
        }
        for p in &ob.networks {
            if !nb.networks.contains(p) {
                semantic.push(SemanticChange::NetworkChanged(format!("-{p}")));
            }
        }
        for a in &nb.aggregates {
            if !ob.aggregates.contains(a) {
                semantic.push(SemanticChange::AggregateChanged(format!("+{}", a.prefix)));
            }
        }
        for a in &ob.aggregates {
            if !nb.aggregates.contains(a) {
                semantic.push(SemanticChange::AggregateChanged(format!("-{}", a.prefix)));
            }
        }
    }
    for ni in &new.interfaces {
        match old.interfaces.iter().find(|oi| oi.name == ni.name) {
            None => semantic.push(SemanticChange::InterfaceChanged(format!("+{}", ni.name))),
            Some(oi) if oi != ni => {
                semantic.push(SemanticChange::InterfaceChanged(format!("~{}", ni.name)));
            }
            _ => {}
        }
    }
    for oi in &old.interfaces {
        if !new.interfaces.iter().any(|ni| ni.name == oi.name) {
            semantic.push(SemanticChange::InterfaceChanged(format!("-{}", oi.name)));
        }
    }
    if old.route_maps != new.route_maps || old.prefix_lists != new.prefix_lists {
        semantic.push(SemanticChange::PolicyChanged("routing policy".into()));
    }
    if old.acls != new.acls {
        semantic.push(SemanticChange::PolicyChanged("acl".into()));
    }
    if old.fib_capacity != new.fib_capacity {
        semantic.push(SemanticChange::PlatformChanged(format!(
            "fib-capacity {:?} -> {:?}",
            old.fib_capacity, new.fib_capacity
        )));
    }
    ConfigDiff { lines, semantic }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crystalnet_net::Asn;

    fn base() -> DeviceConfig {
        DeviceConfig {
            hostname: "r1".into(),
            bgp: Some(BgpConfig {
                asn: Asn(65000),
                router_id: "172.16.0.1".parse().unwrap(),
                max_paths: 64,
                networks: vec!["10.0.0.0/24".parse().unwrap()],
                aggregates: vec![],
                neighbors: vec![NeighborConfig {
                    addr: "100.64.0.1".parse().unwrap(),
                    remote_as: Asn(65100),
                    shutdown: false,
                    route_map_in: None,
                    route_map_out: None,
                }],
            }),
            ..DeviceConfig::default()
        }
    }

    #[test]
    fn identical_configs_have_empty_diff() {
        let d = config_diff(&base(), &base());
        assert!(d.is_empty());
        assert!(d.semantic.is_empty());
    }

    #[test]
    fn neighbor_shutdown_is_semantic() {
        let old = base();
        let mut new = base();
        new.bgp
            .as_mut()
            .unwrap()
            .neighbor_mut("100.64.0.1".parse().unwrap())
            .unwrap()
            .shutdown = true;
        let d = config_diff(&old, &new);
        assert!(!d.is_empty());
        assert!(d
            .semantic
            .iter()
            .any(|c| matches!(c, SemanticChange::NeighborChanged(s) if s == "~100.64.0.1")));
    }

    #[test]
    fn network_add_and_remove() {
        let old = base();
        let mut new = base();
        let bgp = new.bgp.as_mut().unwrap();
        bgp.networks.clear();
        bgp.networks.push("10.1.0.0/24".parse().unwrap());
        let d = config_diff(&old, &new);
        let changes: Vec<String> = d
            .semantic
            .iter()
            .filter_map(|c| match c {
                SemanticChange::NetworkChanged(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(changes.contains(&"+10.1.0.0/24".to_string()));
        assert!(changes.contains(&"-10.0.0.0/24".to_string()));
    }

    #[test]
    fn fib_capacity_is_platform_change() {
        let old = base();
        let mut new = base();
        new.fib_capacity = Some(100);
        let d = config_diff(&old, &new);
        assert!(matches!(d.semantic[0], SemanticChange::PlatformChanged(_)));
    }

    #[test]
    fn line_diff_reports_both_directions() {
        let old = base();
        let mut new = base();
        new.hostname = "r2".into();
        let d = config_diff(&old, &new);
        assert!(d.lines.contains(&LineChange::Removed("hostname r1".into())));
        assert!(d.lines.contains(&LineChange::Added("hostname r2".into())));
    }
}
