//! Parses vendor-CLI text back into a [`DeviceConfig`].
//!
//! `Reload` and the management plane accept textual configuration exactly
//! like production devices do, so operators (and their tools and typos)
//! interact with emulated devices unmodified. The parser is line-oriented
//! with section context, mirroring how real NOS CLIs ingest startup
//! configuration.

use crate::ast::{
    AclEntry,
    Action,
    AggregateConfig,
    BgpConfig,
    Credentials,
    DeviceConfig,
    InterfaceConfig,
    NeighborConfig,
    PrefixListEntry,
    RouteMapEntry,
    RouteMatch,
    RouteSet, //
};
use crystalnet_net::{Asn, Ipv4Addr, Ipv4Cidr, Ipv4Prefix};

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

enum Section {
    Top,
    Interface(usize),
    Bgp,
    Acl(String),
}

/// Parses configuration text.
///
/// # Errors
///
/// Returns the first syntax error with its line number; unknown lines are
/// errors (production tooling treats them as such when pushing config).
pub fn parse(text: &str) -> Result<DeviceConfig, ParseError> {
    let mut cfg = DeviceConfig::default();
    let mut section = Section::Top;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        let line = raw.trim_end();
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed == "!" || trimmed.starts_with('#') {
            if trimmed == "!" {
                section = Section::Top;
            }
            continue;
        }
        let indented = line.starts_with(' ');
        let tok: Vec<&str> = trimmed.split_whitespace().collect();

        if !indented {
            // Top-level statements open sections or stand alone.
            match tok[0] {
                "hostname" => {
                    cfg.hostname = tok
                        .get(1)
                        .ok_or_else(|| err("hostname requires a name".into()))?
                        .to_string();
                    section = Section::Top;
                }
                "username" => {
                    if tok.len() != 4 || tok[2] != "password" {
                        return Err(err("expected `username U password P`".into()));
                    }
                    cfg.credentials = Some(Credentials {
                        user: tok[1].to_string(),
                        password: tok[3].to_string(),
                    });
                }
                "fib-capacity" => {
                    let cap: usize = tok
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad fib-capacity".into()))?;
                    cfg.fib_capacity = Some(cap);
                }
                "interface" => {
                    let name = tok
                        .get(1)
                        .ok_or_else(|| err("interface requires a name".into()))?;
                    cfg.interfaces.push(InterfaceConfig {
                        name: name.to_string(),
                        addr: None,
                        shutdown: false,
                        acl_in: None,
                        acl_out: None,
                    });
                    section = Section::Interface(cfg.interfaces.len() - 1);
                }
                "router" => {
                    if tok.get(1) != Some(&"bgp") {
                        return Err(err("only `router bgp` is supported".into()));
                    }
                    let asn: u32 = tok
                        .get(2)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad AS number".into()))?;
                    cfg.bgp = Some(BgpConfig {
                        asn: Asn(asn),
                        router_id: Ipv4Addr::UNSPECIFIED,
                        max_paths: 1,
                        networks: vec![],
                        aggregates: vec![],
                        neighbors: vec![],
                    });
                    section = Section::Bgp;
                }
                "ip" => match tok.get(1) {
                    Some(&"prefix-list") => parse_prefix_list(&mut cfg, &tok, &err)?,
                    Some(&"access-list") => {
                        let name = tok
                            .get(2)
                            .ok_or_else(|| err("access-list requires a name".into()))?;
                        cfg.acls.entry(name.to_string()).or_default();
                        section = Section::Acl(name.to_string());
                    }
                    _ => return Err(err(format!("unknown statement `{trimmed}`"))),
                },
                _ => return Err(err(format!("unknown statement `{trimmed}`"))),
            }
            continue;
        }

        // Indented: belongs to the open section.
        match &section {
            Section::Interface(i) => {
                let iface = &mut cfg.interfaces[*i];
                match tok[0] {
                    "ip" if tok.get(1) == Some(&"address") => {
                        let addr: Ipv4Cidr = tok
                            .get(2)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("bad interface address".into()))?;
                        iface.addr = Some(addr);
                    }
                    "ip" if tok.get(1) == Some(&"access-group") => {
                        let name = tok
                            .get(2)
                            .ok_or_else(|| err("access-group requires a name".into()))?;
                        match tok.get(3) {
                            Some(&"in") => iface.acl_in = Some(name.to_string()),
                            Some(&"out") => iface.acl_out = Some(name.to_string()),
                            _ => return Err(err("access-group requires in|out".into())),
                        }
                    }
                    "shutdown" => iface.shutdown = true,
                    _ => return Err(err(format!("unknown interface line `{trimmed}`"))),
                }
            }
            Section::Bgp => {
                let bgp = cfg.bgp.as_mut().expect("bgp section open");
                match tok[0] {
                    "router-id" => {
                        bgp.router_id = tok
                            .get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("bad router-id".into()))?;
                    }
                    "maximum-paths" => {
                        bgp.max_paths = tok
                            .get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("bad maximum-paths".into()))?;
                    }
                    "network" => {
                        let p: Ipv4Prefix = tok
                            .get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("bad network prefix".into()))?;
                        bgp.networks.push(p);
                    }
                    "aggregate-address" => {
                        let p: Ipv4Prefix = tok
                            .get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("bad aggregate prefix".into()))?;
                        bgp.aggregates.push(AggregateConfig {
                            prefix: p,
                            summary_only: tok.get(2) == Some(&"summary-only"),
                        });
                    }
                    "neighbor" => parse_neighbor(bgp, &tok, &err)?,
                    _ => return Err(err(format!("unknown bgp line `{trimmed}`"))),
                }
            }
            Section::Acl(name) => {
                let acl = cfg.acls.get_mut(name).expect("acl open");
                if tok.len() != 4 {
                    return Err(err("expected `SEQ ACTION SRC DST`".into()));
                }
                let seq: u32 = tok[0].parse().map_err(|_| err("bad ACL seq".into()))?;
                let action = parse_action(Some(tok[1]), &err)?;
                let src: Ipv4Prefix = tok[2].parse().map_err(|_| err("bad ACL source".into()))?;
                let dst: Ipv4Prefix = tok[3]
                    .parse()
                    .map_err(|_| err("bad ACL destination".into()))?;
                acl.entries.push(AclEntry {
                    seq,
                    action,
                    src,
                    dst,
                });
            }
            Section::Top => return Err(err(format!("unexpected indented line `{trimmed}`"))),
        }
    }
    Ok(cfg)
}

/// Parses configuration text, handling `route-map` headers that the main
/// dispatcher can't express cleanly.
///
/// This wrapper pre-processes route-map headers into section openings.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_config(text: &str) -> Result<DeviceConfig, ParseError> {
    // Route-map headers are 4-token top-level lines; rewrite them into a
    // marker the core parser recognizes is messy, so instead parse in two
    // passes: extract route-map blocks first, feed the rest to `parse`.
    let mut plain = String::new();
    let mut cfg_maps: Vec<(String, RouteMapEntry)> = Vec::new();
    let mut in_map: Option<String> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = raw.trim();
        let tok: Vec<&str> = trimmed.split_whitespace().collect();
        if !raw.starts_with(' ') && tok.first() == Some(&"route-map") {
            if tok.len() != 4 {
                return Err(ParseError {
                    line: lineno,
                    message: "expected `route-map NAME ACTION SEQ`".into(),
                });
            }
            let action = parse_action(Some(tok[2]), &|m| ParseError {
                line: lineno,
                message: m,
            })?;
            let seq: u32 = tok[3].parse().map_err(|_| ParseError {
                line: lineno,
                message: "bad route-map sequence".into(),
            })?;
            let name = tok[1].to_string();
            cfg_maps.push((
                name.clone(),
                RouteMapEntry {
                    seq,
                    action,
                    matches: vec![],
                    sets: vec![],
                },
            ));
            in_map = Some(name);
            plain.push('\n');
            continue;
        }
        if raw.starts_with(' ') && in_map.is_some() {
            // Route-map body line: attach to the open entry.
            let entry = &mut cfg_maps.last_mut().expect("open map").1;
            parse_route_map_body(entry, &tok, lineno)?;
            plain.push('\n');
            continue;
        }
        in_map = None;
        plain.push_str(raw);
        plain.push('\n');
    }

    let mut cfg = parse(&plain)?;
    for (name, entry) in cfg_maps {
        cfg.route_maps.entry(name).or_default().entries.push(entry);
    }
    Ok(cfg)
}

fn parse_route_map_body(
    entry: &mut RouteMapEntry,
    tok: &[&str],
    lineno: usize,
) -> Result<(), ParseError> {
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    match (tok.first().copied(), tok.get(1).copied()) {
        (Some("match"), Some("ip")) => {
            let pl = tok
                .get(4)
                .ok_or_else(|| err("bad prefix-list match".into()))?;
            entry.matches.push(RouteMatch::PrefixList(pl.to_string()));
        }
        (Some("match"), Some("as-path")) => {
            let asn: u32 = tok
                .get(3)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad as-path match".into()))?;
            entry.matches.push(RouteMatch::AsPathContains(Asn(asn)));
        }
        (Some("match"), Some("community")) => {
            let c: u32 = tok
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad community match".into()))?;
            entry.matches.push(RouteMatch::Community(c));
        }
        (Some("set"), Some("local-preference")) => {
            let v: u32 = tok
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad local-preference".into()))?;
            entry.sets.push(RouteSet::LocalPref(v));
        }
        (Some("set"), Some("med")) => {
            let v: u32 = tok
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad med".into()))?;
            entry.sets.push(RouteSet::Med(v));
        }
        (Some("set"), Some("as-path")) => {
            let n: u32 = tok
                .get(3)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad prepend count".into()))?;
            entry.sets.push(RouteSet::AsPathPrepend(n));
        }
        (Some("set"), Some("community")) => {
            let c: u32 = tok
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad community".into()))?;
            entry.sets.push(RouteSet::Community(c));
        }
        _ => return Err(err(format!("unknown route-map line `{}`", tok.join(" ")))),
    }
    Ok(())
}

fn parse_action(
    tok: Option<&str>,
    err: &dyn Fn(String) -> ParseError,
) -> Result<Action, ParseError> {
    match tok {
        Some("permit") => Ok(Action::Permit),
        Some("deny") => Ok(Action::Deny),
        other => Err(err(format!("expected permit|deny, got {other:?}"))),
    }
}

fn parse_neighbor(
    bgp: &mut BgpConfig,
    tok: &[&str],
    err: &dyn Fn(String) -> ParseError,
) -> Result<(), ParseError> {
    let addr: Ipv4Addr = tok
        .get(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("bad neighbor address".into()))?;
    match tok.get(2) {
        Some(&"remote-as") => {
            let asn: u32 = tok
                .get(3)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad remote-as".into()))?;
            bgp.neighbors.push(NeighborConfig {
                addr,
                remote_as: Asn(asn),
                shutdown: false,
                route_map_in: None,
                route_map_out: None,
            });
        }
        Some(&"route-map") => {
            let name = tok
                .get(3)
                .ok_or_else(|| err("route-map requires a name".into()))?;
            let n = bgp
                .neighbor_mut(addr)
                .ok_or_else(|| err(format!("neighbor {addr} not declared")))?;
            match tok.get(4) {
                Some(&"in") => n.route_map_in = Some(name.to_string()),
                Some(&"out") => n.route_map_out = Some(name.to_string()),
                _ => return Err(err("route-map requires in|out".into())),
            }
        }
        Some(&"shutdown") => {
            let n = bgp
                .neighbor_mut(addr)
                .ok_or_else(|| err(format!("neighbor {addr} not declared")))?;
            n.shutdown = true;
        }
        other => return Err(err(format!("unknown neighbor attribute {other:?}"))),
    }
    Ok(())
}

fn parse_prefix_list(
    cfg: &mut DeviceConfig,
    tok: &[&str],
    err: &dyn Fn(String) -> ParseError,
) -> Result<(), ParseError> {
    // ip prefix-list NAME seq N ACTION PREFIX [ge G] [le L]
    let name = tok
        .get(2)
        .ok_or_else(|| err("prefix-list requires a name".into()))?;
    if tok.get(3) != Some(&"seq") {
        return Err(err("expected `seq`".into()));
    }
    let seq: u32 = tok
        .get(4)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("bad sequence".into()))?;
    let action = parse_action(tok.get(5).copied(), err)?;
    let prefix: Ipv4Prefix = tok
        .get(6)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("bad prefix".into()))?;
    let mut ge = None;
    let mut le = None;
    let mut rest = &tok[7..];
    while !rest.is_empty() {
        match (
            rest.first().copied(),
            rest.get(1).and_then(|s| s.parse::<u8>().ok()),
        ) {
            (Some("ge"), Some(v)) => ge = Some(v),
            (Some("le"), Some(v)) => le = Some(v),
            _ => return Err(err("bad ge/le clause".into())),
        }
        rest = &rest[2..];
    }
    cfg.prefix_lists
        .entry(name.to_string())
        .or_default()
        .entries
        .push(PrefixListEntry {
            seq,
            action,
            prefix,
            ge,
            le,
        });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render;

    #[test]
    fn parses_a_realistic_config() {
        let text = "\
hostname leaf1
username crystal password net
fib-capacity 128
!
interface et0
 ip address 100.64.0.2/31
 ip access-group ACL1 in
!
interface et1
 shutdown
!
router bgp 65200
 router-id 172.16.0.5
 maximum-paths 64
 network 10.1.2.0/24
 aggregate-address 10.1.0.0/16 summary-only
 neighbor 100.64.0.3 remote-as 65100
 neighbor 100.64.0.3 route-map RM in
 neighbor 100.64.0.3 shutdown
!
ip prefix-list PL seq 5 permit 10.0.0.0/8 le 24
!
route-map RM permit 10
 match ip address prefix-list PL
 set local-preference 200
!
ip access-list ACL1
 10 permit 10.0.0.0/8 0.0.0.0/0
 20 deny 0.0.0.0/0 0.0.0.0/0
";
        let cfg = parse_config(text).unwrap();
        assert_eq!(cfg.hostname, "leaf1");
        assert_eq!(cfg.fib_capacity, Some(128));
        assert_eq!(cfg.interfaces.len(), 2);
        assert!(cfg.interfaces[1].shutdown);
        let bgp = cfg.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn.0, 65200);
        assert_eq!(bgp.max_paths, 64);
        assert_eq!(bgp.networks.len(), 1);
        assert!(bgp.aggregates[0].summary_only);
        let n = &bgp.neighbors[0];
        assert_eq!(n.remote_as.0, 65100);
        assert!(n.shutdown);
        assert_eq!(n.route_map_in.as_deref(), Some("RM"));
        assert_eq!(cfg.prefix_lists["PL"].entries[0].le, Some(24));
        assert_eq!(cfg.route_maps["RM"].entries[0].sets.len(), 1);
        assert_eq!(cfg.acls["ACL1"].entries.len(), 2);
    }

    #[test]
    fn render_parse_round_trip() {
        let text = "\
hostname spine3
!
interface et0
 ip address 100.64.1.0/31
!
router bgp 65100
 router-id 172.16.0.9
 maximum-paths 16
 network 10.9.0.0/24
 neighbor 100.64.1.1 remote-as 65000
!
ip prefix-list DEF seq 5 permit 0.0.0.0/0
!
route-map OUT deny 20
 match ip address prefix-list DEF
";
        let cfg = parse_config(text).unwrap();
        let cfg2 = parse_config(&render(&cfg)).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_config("hostname x\nbogus statement\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));

        let err = parse_config("router bgp not-a-number\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn neighbor_attributes_require_declaration() {
        let err = parse_config("router bgp 1\n neighbor 1.2.3.4 shutdown\n").unwrap_err();
        assert!(err.message.contains("not declared"));
    }

    #[test]
    fn route_map_requires_valid_header() {
        assert!(parse_config("route-map RM frobnicate 10\n").is_err());
        assert!(parse_config("route-map RM permit\n").is_err());
    }

    #[test]
    fn empty_input_is_an_empty_config() {
        let cfg = parse_config("").unwrap();
        assert_eq!(cfg, DeviceConfig::default());
    }
}
