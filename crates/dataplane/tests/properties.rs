//! Property tests: the FIB agrees with a naive oracle; packet encodings
//! round-trip for arbitrary contents.

use bytes::Bytes;
use crystalnet_dataplane::{
    compare_fibs,
    ecmp_select,
    CompareOptions,
    EthernetFrame,
    Fib,
    FibEntry,
    Ipv4Packet,
    NextHop,
    UdpDatagram,
    VxlanPacket, //
};
use crystalnet_net::{Ipv4Addr, Ipv4Prefix, MacAddr};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Ipv4Prefix::new(Ipv4Addr(a), l))
}

fn arb_entry() -> impl Strategy<Value = FibEntry> {
    prop::collection::vec((0u32..8, any::<u32>()), 0..4).prop_map(|hops| {
        FibEntry::new(
            hops.into_iter()
                .map(|(iface, via)| NextHop {
                    iface,
                    via: Ipv4Addr(via),
                })
                .collect(),
        )
    })
}

/// Naive oracle: scan every installed prefix, pick the longest that
/// contains the address.
fn oracle_lookup(routes: &[(Ipv4Prefix, FibEntry)], addr: Ipv4Addr) -> Option<Ipv4Prefix> {
    routes
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, _)| *p)
}

proptest! {
    /// LPM lookup matches the brute-force oracle on random route tables.
    #[test]
    fn fib_matches_oracle(
        routes in prop::collection::vec((arb_prefix(), arb_entry()), 0..64),
        probes in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        // Dedup prefixes: later installs overwrite earlier ones, so keep
        // only the last per prefix for the oracle.
        let mut fib = Fib::default();
        let mut dedup: std::collections::HashMap<Ipv4Prefix, FibEntry> = Default::default();
        for (p, e) in &routes {
            fib.install(*p, e.clone());
            dedup.insert(*p, e.clone());
        }
        let table: Vec<(Ipv4Prefix, FibEntry)> = dedup.into_iter().collect();
        for probe in probes {
            let addr = Ipv4Addr(probe);
            let got = fib.lookup(addr).map(|(p, _)| p);
            prop_assert_eq!(got, oracle_lookup(&table, addr));
        }
    }

    /// Capacity never exceeded; dropped installs are counted exactly.
    #[test]
    fn fib_capacity_invariant(
        cap in 1usize..32,
        routes in prop::collection::vec(arb_prefix(), 0..64),
    ) {
        let mut fib = Fib::new(Some(cap));
        let mut unique = std::collections::HashSet::new();
        let mut dropped = 0u64;
        for p in routes {
            let out = fib.install(p, FibEntry::default());
            if out == crystalnet_dataplane::InstallOutcome::DroppedFull {
                dropped += 1;
            } else {
                unique.insert(p);
            }
        }
        prop_assert!(fib.len() <= cap);
        prop_assert_eq!(fib.len(), unique.len().min(cap));
        prop_assert_eq!(fib.dropped_installs(), dropped);
    }

    /// ECMP selection always returns a member of the set.
    #[test]
    fn ecmp_selects_a_member(
        entry in arb_entry(),
        src in any::<u32>(),
        dst in any::<u32>(),
        proto in any::<u8>(),
        flow in any::<u16>(),
    ) {
        match ecmp_select(&entry, Ipv4Addr(src), Ipv4Addr(dst), proto, flow) {
            Some(hop) => prop_assert!(entry.next_hops.contains(&hop)),
            None => prop_assert!(entry.next_hops.is_empty()),
        }
    }

    /// A FIB always equals itself; comparison is symmetric in difference
    /// count.
    #[test]
    fn compare_reflexive_symmetric(
        routes_a in prop::collection::vec((arb_prefix(), arb_entry()), 0..16),
        routes_b in prop::collection::vec((arb_prefix(), arb_entry()), 0..16),
    ) {
        let build = |routes: &[(Ipv4Prefix, FibEntry)]| {
            let mut f = Fib::default();
            for (p, e) in routes {
                f.install(*p, e.clone());
            }
            f
        };
        let a = build(&routes_a);
        let b = build(&routes_b);
        let opts = CompareOptions::strict();
        prop_assert!(compare_fibs(&a, &a, &opts).is_empty());
        prop_assert_eq!(
            compare_fibs(&a, &b, &opts).len(),
            compare_fibs(&b, &a, &opts).len()
        );
    }

    /// Ethernet/IPv4/UDP/VXLAN encodings round-trip arbitrary payloads.
    #[test]
    fn packet_round_trips(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        sig in any::<u16>(),
        vni in 0u32..(1 << 24),
        src in any::<u32>(),
        dst in any::<u32>(),
        ttl in 1u8..255,
    ) {
        let ip = Ipv4Packet {
            src: Ipv4Addr(src),
            dst: Ipv4Addr(dst),
            protocol: 17,
            ttl,
            identification: sig,
            payload: Bytes::from(payload.clone()),
        };
        prop_assert_eq!(&Ipv4Packet::decode(ip.encode()).unwrap(), &ip);

        let frame = EthernetFrame {
            dst: MacAddr::from_id(dst),
            src: MacAddr::from_id(src),
            ethertype: 0x0800,
            payload: ip.encode(),
        };
        prop_assert_eq!(&EthernetFrame::decode(frame.encode()).unwrap(), &frame);

        let vx = VxlanPacket { vni, inner: frame.encode() };
        let vx2 = VxlanPacket::decode(vx.encode()).unwrap();
        prop_assert_eq!(vx2.vni, vni);

        let udp = UdpDatagram { src_port: 1, dst_port: 4789, payload: vx.encode() };
        prop_assert_eq!(&UdpDatagram::decode(udp.encode()).unwrap(), &udp);
    }
}
