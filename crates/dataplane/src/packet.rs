//! Wire-format packet types: Ethernet, IPv4, UDP and VXLAN.
//!
//! CrystalNet's virtual links "transfer Ethernet packets just like real
//! physical links" (§3.2), and its data-plane overlay tunnels them in
//! VXLAN-over-UDP so emulations can span clouds and NATs (§4.2). The
//! reproduction keeps real wire encodings (via [`bytes`]) so the encap
//! path — veth → bridge → VXLAN → underlay UDP — is exercised with actual
//! serialization, and telemetry signatures survive round trips.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crystalnet_net::{Ipv4Addr, MacAddr};
use serde::{Deserialize, Serialize};

/// EtherType values used by the emulation.
pub mod ethertype {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// ARP.
    pub const ARP: u16 = 0x0806;
    /// BGP control messages riding directly on Ethernet in the emulation's
    /// shortcut control channel (a private ethertype).
    pub const CONTROL: u16 = 0x88b5;
}

/// IP protocol numbers used by the emulation.
pub mod ipproto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// ICMP.
    pub const ICMP: u8 = 1;
}

/// Errors from decoding wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the fixed header requires.
    Truncated(&'static str),
    /// A version or magic field did not match.
    BadField(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated(what) => write!(f, "truncated {what}"),
            DecodeError::BadField(what) => write!(f, "bad field {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Encoded length in bytes.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        14 + self.payload.len()
    }

    /// Serializes to wire format.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses from wire format.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] on short input.
    pub fn decode(mut bytes: Bytes) -> Result<Self, DecodeError> {
        if bytes.len() < 14 {
            return Err(DecodeError::Truncated("ethernet header"));
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        bytes.copy_to_slice(&mut dst);
        bytes.copy_to_slice(&mut src);
        let ethertype = bytes.get_u16();
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: bytes,
        })
    }
}

/// An IPv4 packet (20-byte header, no options).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP protocol number.
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Identification field — CrystalNet's telemetry signature rides here
    /// (operators "inject them with a pre-defined signature", §3.3).
    pub identification: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Serializes to wire format, computing the header checksum.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let total_len = 20 + self.payload.len();
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len as u16);
        buf.put_u16(self.identification);
        buf.put_u16(0); // flags/fragment
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_u32(self.src.0);
        buf.put_u32(self.dst.0);
        let csum = ipv4_checksum(&buf[..20]);
        buf[10] = (csum >> 8) as u8;
        buf[11] = (csum & 0xff) as u8;
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses from wire format, verifying version and checksum.
    ///
    /// # Errors
    ///
    /// Fails on short input, a non-IPv4 version nibble, or a bad checksum.
    pub fn decode(mut bytes: Bytes) -> Result<Self, DecodeError> {
        if bytes.len() < 20 {
            return Err(DecodeError::Truncated("ipv4 header"));
        }
        if ipv4_checksum(&bytes[..20]) != 0 {
            return Err(DecodeError::BadField("ipv4 checksum"));
        }
        let vihl = bytes.get_u8();
        if vihl != 0x45 {
            return Err(DecodeError::BadField("ipv4 version/ihl"));
        }
        let _tos = bytes.get_u8();
        let total_len = bytes.get_u16() as usize;
        let identification = bytes.get_u16();
        let _frag = bytes.get_u16();
        let ttl = bytes.get_u8();
        let protocol = bytes.get_u8();
        let _csum = bytes.get_u16();
        let src = Ipv4Addr(bytes.get_u32());
        let dst = Ipv4Addr(bytes.get_u32());
        if total_len < 20 || total_len - 20 > bytes.len() {
            return Err(DecodeError::Truncated("ipv4 payload"));
        }
        let payload = bytes.slice(..total_len - 20);
        Ok(Ipv4Packet {
            src,
            dst,
            protocol,
            ttl,
            identification,
            payload,
        })
    }

    /// A copy with TTL decremented; `None` once the TTL hits zero
    /// (the packet must be dropped).
    #[must_use]
    pub fn forwarded(&self) -> Option<Ipv4Packet> {
        if self.ttl <= 1 {
            return None;
        }
        let mut p = self.clone();
        p.ttl -= 1;
        Some(p)
    }
}

/// RFC 1071 internet checksum over a header slice.
#[must_use]
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += u32::from(word);
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A UDP datagram (used by the VXLAN underlay).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Serializes to wire format (checksum 0 = unused, as VXLAN allows).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.payload.len());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(8 + self.payload.len() as u16);
        buf.put_u16(0);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses from wire format.
    ///
    /// # Errors
    ///
    /// Fails on short input or an inconsistent length field.
    pub fn decode(mut bytes: Bytes) -> Result<Self, DecodeError> {
        if bytes.len() < 8 {
            return Err(DecodeError::Truncated("udp header"));
        }
        let src_port = bytes.get_u16();
        let dst_port = bytes.get_u16();
        let len = bytes.get_u16() as usize;
        let _csum = bytes.get_u16();
        if len < 8 || len - 8 > bytes.len() {
            return Err(DecodeError::Truncated("udp payload"));
        }
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: bytes.slice(..len - 8),
        })
    }
}

/// The IANA VXLAN UDP port.
pub const VXLAN_PORT: u16 = 4789;

/// A VXLAN header + inner frame (RFC 7348).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VxlanPacket {
    /// The 24-bit VXLAN network identifier; CrystalNet assigns one per
    /// virtual link for isolation (§4.2).
    pub vni: u32,
    /// The encapsulated Ethernet frame bytes.
    pub inner: Bytes,
}

impl VxlanPacket {
    /// Serializes to wire format.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.inner.len());
        buf.put_u8(0x08); // flags: I bit set
        buf.put_u8(0);
        buf.put_u16(0);
        buf.put_u32(self.vni << 8);
        buf.put_slice(&self.inner);
        buf.freeze()
    }

    /// Parses from wire format.
    ///
    /// # Errors
    ///
    /// Fails on short input or a missing VNI flag.
    pub fn decode(mut bytes: Bytes) -> Result<Self, DecodeError> {
        if bytes.len() < 8 {
            return Err(DecodeError::Truncated("vxlan header"));
        }
        let flags = bytes.get_u8();
        if flags & 0x08 == 0 {
            return Err(DecodeError::BadField("vxlan I flag"));
        }
        let _r = bytes.get_u8();
        let _r2 = bytes.get_u16();
        let vni = bytes.get_u32() >> 8;
        Ok(VxlanPacket { vni, inner: bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u32) -> MacAddr {
        MacAddr::from_id(n)
    }

    #[test]
    fn ethernet_round_trip() {
        let f = EthernetFrame {
            dst: mac(1),
            src: mac(2),
            ethertype: ethertype::IPV4,
            payload: Bytes::from_static(b"hello"),
        };
        let wire = f.encode();
        assert_eq!(wire.len(), f.wire_len());
        let back = EthernetFrame::decode(wire).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn ethernet_truncated() {
        assert_eq!(
            EthernetFrame::decode(Bytes::from_static(b"short")),
            Err(DecodeError::Truncated("ethernet header"))
        );
    }

    #[test]
    fn ipv4_round_trip_and_checksum() {
        let p = Ipv4Packet {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.0.0.2".parse().unwrap(),
            protocol: ipproto::UDP,
            ttl: 64,
            identification: 0xbeef,
            payload: Bytes::from_static(b"payload"),
        };
        let wire = p.encode();
        // Checksum over an intact header verifies to zero.
        assert_eq!(ipv4_checksum(&wire[..20]), 0);
        let back = Ipv4Packet::decode(wire.clone()).unwrap();
        assert_eq!(p, back);
        // Corrupt a byte: decode must fail.
        let mut bad = wire.to_vec();
        bad[16] ^= 0xff;
        assert!(Ipv4Packet::decode(Bytes::from(bad)).is_err());
    }

    #[test]
    fn ttl_expiry() {
        let mut p = Ipv4Packet {
            src: Ipv4Addr(1),
            dst: Ipv4Addr(2),
            protocol: 1,
            ttl: 2,
            identification: 0,
            payload: Bytes::new(),
        };
        p = p.forwarded().unwrap();
        assert_eq!(p.ttl, 1);
        assert!(p.forwarded().is_none());
    }

    #[test]
    fn udp_round_trip() {
        let d = UdpDatagram {
            src_port: 49152,
            dst_port: VXLAN_PORT,
            payload: Bytes::from_static(b"x"),
        };
        assert_eq!(UdpDatagram::decode(d.encode()).unwrap(), d);
    }

    #[test]
    fn vxlan_round_trip_carries_vni() {
        let inner = EthernetFrame {
            dst: mac(3),
            src: mac(4),
            ethertype: ethertype::ARP,
            payload: Bytes::from_static(b"arp"),
        };
        let v = VxlanPacket {
            vni: 0x00ab_cdef,
            inner: inner.encode(),
        };
        let back = VxlanPacket::decode(v.encode()).unwrap();
        assert_eq!(back.vni, 0x00ab_cdef);
        let inner_back = EthernetFrame::decode(back.inner).unwrap();
        assert_eq!(inner_back, inner);
    }

    #[test]
    fn full_encap_stack_round_trip() {
        // device frame -> VXLAN -> UDP -> underlay IPv4, and back.
        let frame = EthernetFrame {
            dst: mac(9),
            src: mac(8),
            ethertype: ethertype::IPV4,
            payload: Bytes::from_static(b"inner packet"),
        };
        let vxlan = VxlanPacket {
            vni: 42,
            inner: frame.encode(),
        };
        let udp = UdpDatagram {
            src_port: 55555,
            dst_port: VXLAN_PORT,
            payload: vxlan.encode(),
        };
        let ip = Ipv4Packet {
            src: "203.0.113.5".parse().unwrap(),
            dst: "203.0.113.9".parse().unwrap(),
            protocol: ipproto::UDP,
            ttl: 64,
            identification: 7,
            payload: udp.encode(),
        };
        let wire = ip.encode();

        let ip2 = Ipv4Packet::decode(wire).unwrap();
        let udp2 = UdpDatagram::decode(ip2.payload.clone()).unwrap();
        let vx2 = VxlanPacket::decode(udp2.payload.clone()).unwrap();
        let frame2 = EthernetFrame::decode(vx2.inner.clone()).unwrap();
        assert_eq!(frame2, frame);
        assert_eq!(vx2.vni, 42);
    }

    #[test]
    fn vxlan_requires_i_flag() {
        let mut wire = VxlanPacket {
            vni: 1,
            inner: Bytes::new(),
        }
        .encode()
        .to_vec();
        wire[0] = 0;
        assert_eq!(
            VxlanPacket::decode(Bytes::from(wire)),
            Err(DecodeError::BadField("vxlan I flag"))
        );
    }
}
