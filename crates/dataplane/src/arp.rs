//! ARP: address resolution on the emulated Ethernet links.
//!
//! Two of the paper's firmware bugs live at this layer: "ARP refreshing
//! failed when peering configuration was changed" (§2) and CTNR-B "failing
//! to forward ARP packets to CPU due to incorrect trap implementation"
//! (§7 Case 2). The table therefore models entry expiry and an explicit
//! refresh path that buggy firmware can skip.

use crystalnet_net::{Ipv4Addr, MacAddr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An ARP message (request or reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArpMessage {
    /// True for a request, false for a reply.
    pub is_request: bool,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

/// One resolved neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ArpEntry {
    mac: MacAddr,
    learned_at_nanos: u64,
}

/// A per-device ARP table with entry aging.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArpTable {
    entries: HashMap<Ipv4Addr, ArpEntry>,
    /// Entry lifetime in nanoseconds.
    ttl_nanos: u64,
}

impl ArpTable {
    /// A table whose entries expire after `ttl_nanos`.
    #[must_use]
    pub fn new(ttl_nanos: u64) -> Self {
        ArpTable {
            entries: HashMap::new(),
            ttl_nanos,
        }
    }

    /// Learns (or refreshes) a neighbor.
    pub fn learn(&mut self, ip: Ipv4Addr, mac: MacAddr, now_nanos: u64) {
        self.entries.insert(
            ip,
            ArpEntry {
                mac,
                learned_at_nanos: now_nanos,
            },
        );
    }

    /// Resolves a neighbor if present and fresh.
    #[must_use]
    pub fn resolve(&self, ip: Ipv4Addr, now_nanos: u64) -> Option<MacAddr> {
        self.entries.get(&ip).and_then(|e| {
            if now_nanos.saturating_sub(e.learned_at_nanos) <= self.ttl_nanos {
                Some(e.mac)
            } else {
                None
            }
        })
    }

    /// Whether an entry exists but has gone stale (needs refresh).
    #[must_use]
    pub fn is_stale(&self, ip: Ipv4Addr, now_nanos: u64) -> bool {
        self.entries
            .get(&ip)
            .is_some_and(|e| now_nanos.saturating_sub(e.learned_at_nanos) > self.ttl_nanos)
    }

    /// Drops a neighbor (peering removed).
    pub fn flush(&mut self, ip: Ipv4Addr) {
        self.entries.remove(&ip);
    }

    /// Drops everything.
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Live entry count at `now_nanos`.
    #[must_use]
    pub fn live_count(&self, now_nanos: u64) -> usize {
        self.entries
            .values()
            .filter(|e| now_nanos.saturating_sub(e.learned_at_nanos) <= self.ttl_nanos)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(n: u32) -> Ipv4Addr {
        Ipv4Addr(n)
    }
    fn mac(n: u32) -> MacAddr {
        MacAddr::from_id(n)
    }

    #[test]
    fn learn_and_resolve() {
        let mut t = ArpTable::new(1000);
        t.learn(ip(1), mac(1), 0);
        assert_eq!(t.resolve(ip(1), 500), Some(mac(1)));
        assert_eq!(t.resolve(ip(2), 500), None);
    }

    #[test]
    fn entries_expire() {
        let mut t = ArpTable::new(1000);
        t.learn(ip(1), mac(1), 0);
        assert_eq!(t.resolve(ip(1), 1001), None);
        assert!(t.is_stale(ip(1), 1001));
        assert!(!t.is_stale(ip(1), 1000));
        assert!(!t.is_stale(ip(2), 1001)); // absent, not stale
    }

    #[test]
    fn refresh_restores_liveness() {
        let mut t = ArpTable::new(1000);
        t.learn(ip(1), mac(1), 0);
        // A correct firmware refreshes; the entry stays resolvable.
        t.learn(ip(1), mac(1), 900);
        assert_eq!(t.resolve(ip(1), 1800), Some(mac(1)));
        // A firmware with the §2 ARP-refresh bug simply never calls
        // `learn` again — the entry goes stale and traffic blackholes.
    }

    #[test]
    fn flush_removes_entries() {
        let mut t = ArpTable::new(1000);
        t.learn(ip(1), mac(1), 0);
        t.learn(ip(2), mac(2), 0);
        t.flush(ip(1));
        assert_eq!(t.resolve(ip(1), 1), None);
        assert_eq!(t.live_count(1), 1);
        t.flush_all();
        assert_eq!(t.live_count(1), 0);
    }
}
