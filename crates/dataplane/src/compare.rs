//! The FIB comparator (§9, "Dealing with non-determinism").
//!
//! Cross-validating emulated against production forwarding tables — or a
//! boundary emulation against a full one — needs more than equality:
//! ECMP path selection combined with IP prefix aggregation makes some
//! routes legitimately non-deterministic (the Figure 1 situation where R6
//! may pick either contributing path for the aggregate). The comparator
//! therefore treats ECMP sets as sets and accepts declared
//! non-deterministic prefixes as long as both sides can forward them.

use crate::fib::Fib;
use crystalnet_net::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One difference between two FIBs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FibDifference {
    /// Present only on the left side.
    OnlyLeft(Ipv4Prefix),
    /// Present only on the right side.
    OnlyRight(Ipv4Prefix),
    /// Present on both sides with different ECMP sets.
    NextHopMismatch {
        /// The prefix in disagreement.
        prefix: Ipv4Prefix,
        /// Left ECMP set size.
        left_hops: usize,
        /// Right ECMP set size.
        right_hops: usize,
    },
    /// A declared non-deterministic prefix is unreachable on one side —
    /// still an error even under relaxed comparison.
    NondeterministicUnreachable(Ipv4Prefix),
}

/// Comparison options.
#[derive(Debug, Clone, Default)]
pub struct CompareOptions {
    /// Prefixes whose next hops may legitimately differ (aggregates under
    /// ECMP, §9). They must still be present and reachable on both sides.
    pub nondeterministic: HashSet<Ipv4Prefix>,
}

impl CompareOptions {
    /// Strict comparison (empty non-deterministic set).
    #[must_use]
    pub fn strict() -> Self {
        CompareOptions::default()
    }

    /// Marks `prefix` as legitimately non-deterministic.
    #[must_use]
    pub fn tolerating(mut self, prefix: Ipv4Prefix) -> Self {
        self.nondeterministic.insert(prefix);
        self
    }
}

/// Compares two FIBs, returning every difference.
///
/// ECMP sets compare as sets ([`crate::fib::FibEntry`] keeps them sorted
/// and deduplicated, so slice equality is set equality).
#[must_use]
pub fn compare_fibs(left: &Fib, right: &Fib, opts: &CompareOptions) -> Vec<FibDifference> {
    let mut diffs = Vec::new();
    for (prefix, le) in left.iter() {
        match right.get(prefix) {
            None => diffs.push(FibDifference::OnlyLeft(prefix)),
            Some(re) => {
                if opts.nondeterministic.contains(&prefix) {
                    if !le.is_reachable() || !re.is_reachable() {
                        diffs.push(FibDifference::NondeterministicUnreachable(prefix));
                    }
                } else if le.next_hops != re.next_hops {
                    diffs.push(FibDifference::NextHopMismatch {
                        prefix,
                        left_hops: le.next_hops.len(),
                        right_hops: re.next_hops.len(),
                    });
                }
            }
        }
    }
    for (prefix, _) in right.iter() {
        if left.get(prefix).is_none() {
            diffs.push(FibDifference::OnlyRight(prefix));
        }
    }
    diffs.sort_by_key(|d| match d {
        FibDifference::OnlyLeft(p)
        | FibDifference::OnlyRight(p)
        | FibDifference::NextHopMismatch { prefix: p, .. }
        | FibDifference::NondeterministicUnreachable(p) => (*p, variant_rank(d)),
    });
    diffs
}

fn variant_rank(d: &FibDifference) -> u8 {
    match d {
        FibDifference::OnlyLeft(_) => 0,
        FibDifference::OnlyRight(_) => 1,
        FibDifference::NextHopMismatch { .. } => 2,
        FibDifference::NondeterministicUnreachable(_) => 3,
    }
}

/// Whether two FIBs agree under the options.
#[must_use]
pub fn fibs_equal(left: &Fib, right: &Fib, opts: &CompareOptions) -> bool {
    compare_fibs(left, right, opts).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::{FibEntry, NextHop};
    use crystalnet_net::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }
    fn hop(i: u32) -> NextHop {
        NextHop {
            iface: i,
            via: Ipv4Addr(i),
        }
    }
    fn fib(entries: &[(&str, Vec<u32>)]) -> Fib {
        let mut f = Fib::default();
        for (pre, hops) in entries {
            f.install(
                p(pre),
                FibEntry::new(hops.iter().copied().map(hop).collect()),
            );
        }
        f
    }

    #[test]
    fn identical_fibs_agree() {
        let a = fib(&[("10.0.0.0/8", vec![1, 2]), ("20.0.0.0/8", vec![3])]);
        let b = fib(&[("20.0.0.0/8", vec![3]), ("10.0.0.0/8", vec![2, 1])]);
        // ECMP order is irrelevant: sets compare equal.
        assert!(fibs_equal(&a, &b, &CompareOptions::strict()));
    }

    #[test]
    fn missing_prefixes_reported_on_both_sides() {
        let a = fib(&[("10.0.0.0/8", vec![1])]);
        let b = fib(&[("20.0.0.0/8", vec![1])]);
        let diffs = compare_fibs(&a, &b, &CompareOptions::strict());
        assert_eq!(diffs.len(), 2);
        assert!(diffs.contains(&FibDifference::OnlyLeft(p("10.0.0.0/8"))));
        assert!(diffs.contains(&FibDifference::OnlyRight(p("20.0.0.0/8"))));
    }

    #[test]
    fn hop_mismatch_reported() {
        let a = fib(&[("10.0.0.0/8", vec![1, 2])]);
        let b = fib(&[("10.0.0.0/8", vec![1])]);
        let diffs = compare_fibs(&a, &b, &CompareOptions::strict());
        assert_eq!(
            diffs,
            vec![FibDifference::NextHopMismatch {
                prefix: p("10.0.0.0/8"),
                left_hops: 2,
                right_hops: 1,
            }]
        );
    }

    #[test]
    fn nondeterministic_prefix_tolerates_different_hops() {
        // The Figure 1 aggregate: both sides reach P3 via different hops.
        let a = fib(&[("10.1.0.0/16", vec![1])]);
        let b = fib(&[("10.1.0.0/16", vec![2])]);
        let opts = CompareOptions::strict().tolerating(p("10.1.0.0/16"));
        assert!(fibs_equal(&a, &b, &opts));
        // But strict comparison flags it.
        assert!(!fibs_equal(&a, &b, &CompareOptions::strict()));
    }

    #[test]
    fn nondeterministic_prefix_must_still_be_reachable() {
        let a = fib(&[("10.1.0.0/16", vec![1])]);
        let mut b = Fib::default();
        b.install(p("10.1.0.0/16"), FibEntry::default()); // unreachable
        let opts = CompareOptions::strict().tolerating(p("10.1.0.0/16"));
        let diffs = compare_fibs(&a, &b, &opts);
        assert_eq!(
            diffs,
            vec![FibDifference::NondeterministicUnreachable(p("10.1.0.0/16"))]
        );
    }

    #[test]
    fn nondeterministic_prefix_must_exist_on_both_sides() {
        let a = fib(&[("10.1.0.0/16", vec![1])]);
        let b = Fib::default();
        let opts = CompareOptions::strict().tolerating(p("10.1.0.0/16"));
        assert!(!fibs_equal(&a, &b, &opts));
    }

    #[test]
    fn empty_fibs_agree() {
        assert!(fibs_equal(
            &Fib::default(),
            &Fib::default(),
            &CompareOptions::strict()
        ));
    }
}
