//! Per-device forwarding decisions.
//!
//! Combines FIB lookup, TTL handling, local delivery and packet filters
//! into the single decision a device's "ASIC" makes per packet. The packet
//! filter is abstract (a closure) because ACL semantics are
//! vendor-interpreted — including the §2 v1/v2 ACL misread — and vendor
//! profiles live in the routing crate.

use crate::fib::{ecmp_select, Fib, NextHop};
use crate::packet::Ipv4Packet;
use crystalnet_net::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// What a device decides to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForwardDecision {
    /// Send out the selected next hop.
    Forward(NextHop),
    /// The packet is addressed to this device.
    Deliver,
    /// No route: blackhole.
    DropNoRoute,
    /// TTL expired.
    DropTtlExpired,
    /// Denied by an ACL.
    DropAcl,
}

/// Decides the fate of `packet` on a device owning `local_addrs`.
///
/// `acl_permits` is consulted first (inbound filter), mirroring hardware
/// pipelines where the ACL TCAM stage precedes the L3 lookup.
pub fn decide(
    fib: &Fib,
    local_addrs: &[Ipv4Addr],
    packet: &Ipv4Packet,
    acl_permits: impl Fn(Ipv4Addr, Ipv4Addr) -> bool,
) -> ForwardDecision {
    if !acl_permits(packet.src, packet.dst) {
        return ForwardDecision::DropAcl;
    }
    if local_addrs.contains(&packet.dst) {
        return ForwardDecision::Deliver;
    }
    if packet.ttl <= 1 {
        return ForwardDecision::DropTtlExpired;
    }
    match fib.lookup(packet.dst) {
        Some((_, entry)) => {
            match ecmp_select(
                entry,
                packet.src,
                packet.dst,
                packet.protocol,
                packet.identification,
            ) {
                Some(hop) => ForwardDecision::Forward(hop),
                None => ForwardDecision::DropNoRoute,
            }
        }
        None => ForwardDecision::DropNoRoute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::FibEntry;
    use bytes::Bytes;
    use crystalnet_net::Ipv4Prefix;

    fn pkt(src: &str, dst: &str, ttl: u8) -> Ipv4Packet {
        Ipv4Packet {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            protocol: 6,
            ttl,
            identification: 1,
            payload: Bytes::new(),
        }
    }

    fn fib_with(prefix: &str, iface: u32) -> Fib {
        let mut fib = Fib::default();
        fib.install(
            prefix.parse::<Ipv4Prefix>().unwrap(),
            FibEntry::new(vec![NextHop {
                iface,
                via: Ipv4Addr(iface),
            }]),
        );
        fib
    }

    #[test]
    fn forwards_on_route() {
        let fib = fib_with("10.0.0.0/8", 3);
        let d = decide(&fib, &[], &pkt("1.1.1.1", "10.1.1.1", 64), |_, _| true);
        assert!(matches!(d, ForwardDecision::Forward(h) if h.iface == 3));
    }

    #[test]
    fn delivers_local() {
        let fib = fib_with("10.0.0.0/8", 3);
        let me: Ipv4Addr = "10.1.1.1".parse().unwrap();
        let d = decide(&fib, &[me], &pkt("1.1.1.1", "10.1.1.1", 64), |_, _| true);
        assert_eq!(d, ForwardDecision::Deliver);
    }

    #[test]
    fn drops_without_route() {
        let fib = fib_with("10.0.0.0/8", 3);
        let d = decide(&fib, &[], &pkt("1.1.1.1", "11.1.1.1", 64), |_, _| true);
        assert_eq!(d, ForwardDecision::DropNoRoute);
    }

    #[test]
    fn ttl_expiry_checked_before_lookup() {
        let fib = fib_with("10.0.0.0/8", 3);
        let d = decide(&fib, &[], &pkt("1.1.1.1", "10.1.1.1", 1), |_, _| true);
        assert_eq!(d, ForwardDecision::DropTtlExpired);
    }

    #[test]
    fn acl_checked_first() {
        let fib = fib_with("10.0.0.0/8", 3);
        let d = decide(&fib, &[], &pkt("1.1.1.1", "10.1.1.1", 1), |_, _| false);
        assert_eq!(d, ForwardDecision::DropAcl);
    }

    #[test]
    fn local_delivery_ignores_ttl() {
        let fib = Fib::default();
        let me: Ipv4Addr = "10.1.1.1".parse().unwrap();
        let d = decide(&fib, &[me], &pkt("1.1.1.1", "10.1.1.1", 1), |_, _| true);
        assert_eq!(d, ForwardDecision::Deliver);
    }
}
