//! Packet-level telemetry (§3.3).
//!
//! Operators "specify the packets to be injected and CrystalNet injects
//! them with a pre-defined signature. All emulated devices capture all seen
//! packets, filter and dump traces based on the signature. These traces can
//! be used for analyzing network behavior." `PullPackets` optionally
//! computes packet paths and counters from the traces — this module
//! implements the capture store and the path/counter computation.

use crate::forward::ForwardDecision;
use crate::packet::Ipv4Packet;
use crystalnet_net::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The telemetry signature carried in the IPv4 identification field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Signature(pub u16);

/// One captured event: a device saw (and decided the fate of) a packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual-time nanoseconds of the capture.
    pub at_nanos: u64,
    /// The capturing device.
    pub device: DeviceId,
    /// Ingress interface index (`None` for locally injected packets).
    pub ingress: Option<u32>,
    /// What the device did with it.
    pub decision: ForwardDecision,
    /// Hop count position within its packet's journey (0 = injection).
    pub hop: u32,
    /// Content digest of the provenance record behind the FIB entry that
    /// forwarded this packet, when the control plane recorded one. Links a
    /// packet hop back to the route announcement chain that created it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub prov: Option<u64>,
}

/// The per-signature trace store each PhyNet container contributes to.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceStore {
    traces: BTreeMap<Signature, Vec<TraceEvent>>,
}

impl TraceStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Records a capture if the packet carries a known signature filter.
    ///
    /// Devices capture *all* packets but only dump those matching the
    /// signature, so the store is keyed by signature directly.
    pub fn capture(&mut self, packet: &Ipv4Packet, event: TraceEvent) {
        self.traces
            .entry(Signature(packet.identification))
            .or_default()
            .push(event);
    }

    /// All events for a signature, in capture order.
    #[must_use]
    pub fn events(&self, sig: Signature) -> &[TraceEvent] {
        self.traces.get(&sig).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Signatures with at least one capture.
    pub fn signatures(&self) -> impl Iterator<Item = Signature> + '_ {
        self.traces.keys().copied()
    }

    /// Clears traces for one signature (the "clean traces after pulling"
    /// option of `PullPackets`).
    pub fn clear(&mut self, sig: Signature) {
        self.traces.remove(&sig);
    }

    /// Merges another store (traces pulled from many devices).
    pub fn merge(&mut self, other: TraceStore) {
        for (sig, mut events) in other.traces {
            self.traces.entry(sig).or_default().append(&mut events);
        }
    }

    /// The device-by-device path a signature's packet took, ordered by hop
    /// then capture time.
    #[must_use]
    pub fn path(&self, sig: Signature) -> Vec<DeviceId> {
        let mut events: Vec<&TraceEvent> = self.events(sig).iter().collect();
        events.sort_by_key(|e| (e.hop, e.at_nanos));
        events.iter().map(|e| e.device).collect()
    }

    /// The terminal fate of a signature's packet, if captured.
    #[must_use]
    pub fn outcome(&self, sig: Signature) -> Option<ForwardDecision> {
        let mut events: Vec<&TraceEvent> = self.events(sig).iter().collect();
        events.sort_by_key(|e| (e.hop, e.at_nanos));
        events.last().map(|e| e.decision)
    }

    /// Per-device capture counters for a signature (traffic distribution —
    /// how the Figure 1 imbalance is measured).
    #[must_use]
    pub fn counters(&self, sig: Signature) -> BTreeMap<DeviceId, u64> {
        let mut out = BTreeMap::new();
        for e in self.events(sig) {
            *out.entry(e.device).or_insert(0) += 1;
        }
        out
    }

    /// Aggregate per-device counters across *all* signatures.
    #[must_use]
    pub fn counters_all(&self) -> BTreeMap<DeviceId, u64> {
        let mut out = BTreeMap::new();
        for events in self.traces.values() {
            for e in events {
                *out.entry(e.device).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::NextHop;
    use bytes::Bytes;
    use crystalnet_net::Ipv4Addr;

    fn pkt(sig: u16) -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr(1),
            dst: Ipv4Addr(2),
            protocol: 6,
            ttl: 64,
            identification: sig,
            payload: Bytes::new(),
        }
    }

    fn ev(device: u32, hop: u32, at: u64, decision: ForwardDecision) -> TraceEvent {
        TraceEvent {
            at_nanos: at,
            device: DeviceId(device),
            ingress: None,
            decision,
            hop,
            prov: None,
        }
    }

    const FWD: ForwardDecision = ForwardDecision::Forward(NextHop {
        iface: 0,
        via: Ipv4Addr(0),
    });

    #[test]
    fn path_reconstruction_orders_by_hop() {
        let mut store = TraceStore::new();
        let p = pkt(7);
        // Captures arrive out of order (pulled from devices in parallel).
        store.capture(&p, ev(30, 2, 300, ForwardDecision::Deliver));
        store.capture(&p, ev(10, 0, 100, FWD));
        store.capture(&p, ev(20, 1, 200, FWD));
        assert_eq!(
            store.path(Signature(7)),
            vec![DeviceId(10), DeviceId(20), DeviceId(30)]
        );
        assert_eq!(store.outcome(Signature(7)), Some(ForwardDecision::Deliver));
    }

    #[test]
    fn signatures_are_isolated() {
        let mut store = TraceStore::new();
        store.capture(&pkt(1), ev(1, 0, 0, FWD));
        store.capture(&pkt(2), ev(2, 0, 0, FWD));
        assert_eq!(store.events(Signature(1)).len(), 1);
        assert_eq!(store.events(Signature(2)).len(), 1);
        assert_eq!(store.events(Signature(3)).len(), 0);
        assert_eq!(store.signatures().count(), 2);
    }

    #[test]
    fn counters_count_per_device() {
        let mut store = TraceStore::new();
        for i in 0..5 {
            store.capture(&pkt(9), ev(1, i, u64::from(i), FWD));
        }
        store.capture(&pkt(9), ev(2, 5, 99, ForwardDecision::DropNoRoute));
        let c = store.counters(Signature(9));
        assert_eq!(c[&DeviceId(1)], 5);
        assert_eq!(c[&DeviceId(2)], 1);
        assert_eq!(
            store.outcome(Signature(9)),
            Some(ForwardDecision::DropNoRoute)
        );
    }

    #[test]
    fn clear_and_merge() {
        let mut a = TraceStore::new();
        a.capture(&pkt(1), ev(1, 0, 0, FWD));
        let mut b = TraceStore::new();
        b.capture(&pkt(1), ev(2, 1, 1, FWD));
        b.capture(&pkt(2), ev(3, 0, 0, FWD));
        a.merge(b);
        assert_eq!(a.events(Signature(1)).len(), 2);
        assert_eq!(a.events(Signature(2)).len(), 1);
        a.clear(Signature(1));
        assert!(a.events(Signature(1)).is_empty());
        assert_eq!(a.events(Signature(2)).len(), 1);
    }
}
