//! Data plane for the CrystalNet reproduction: packets, forwarding tables,
//! forwarding decisions, ARP, packet telemetry, and FIB comparison.
//!
//! CrystalNet focuses on *control-plane* fidelity — but it still needs a
//! real enough data plane to probe routes, trace injected packets
//! (`InjectPackets`/`PullPackets`), and compare forwarding tables between
//! emulation and production (§9). This crate provides that substrate:
//! wire-encoded Ethernet/IPv4/UDP/VXLAN, a capacity-bounded
//! longest-prefix-match FIB with ECMP, per-device forwarding decisions,
//! ARP with aging, telemetry capture with path reconstruction, and the
//! ECMP/aggregation-aware FIB comparator.

#![warn(missing_docs)]

pub mod arp;
pub mod compare;
pub mod fib;
pub mod forward;
pub mod packet;
pub mod telemetry;

pub use arp::{ArpMessage, ArpTable};
pub use compare::{compare_fibs, fibs_equal, CompareOptions, FibDifference};
pub use fib::{ecmp_select, Fib, FibEntry, InstallOutcome, NextHop};
pub use forward::{decide, ForwardDecision};
pub use packet::{
    ethertype,
    ipproto,
    DecodeError,
    EthernetFrame,
    Ipv4Packet,
    UdpDatagram,
    VxlanPacket,
    VXLAN_PORT, //
};
pub use telemetry::{Signature, TraceEvent, TraceStore};
