//! The forwarding information base: longest-prefix-match with ECMP sets
//! and hardware capacity limits.
//!
//! Two of the paper's §2 incidents live here: a router whose FIB filled up
//! and silently dropped route installs (blackholing a software load
//! balancer's /24 blocks), and vendor-divergent behaviour "after FIB is
//! full". [`Fib`] therefore models a bounded table with an explicit,
//! observable overflow outcome that vendor profiles interpret differently.

use crystalnet_net::{Ipv4Addr, Ipv4Prefix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A resolved next hop: egress interface plus the peer's address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NextHop {
    /// Egress interface index on the local device.
    pub iface: u32,
    /// Address of the adjacent device on that interface.
    pub via: Ipv4Addr,
}

/// A FIB entry: the ECMP set for one prefix.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FibEntry {
    /// Equal-cost next hops, kept sorted for deterministic hashing.
    pub next_hops: Vec<NextHop>,
}

impl FibEntry {
    /// An entry with the given hops (deduplicated and sorted).
    #[must_use]
    pub fn new(mut next_hops: Vec<NextHop>) -> Self {
        next_hops.sort_unstable();
        next_hops.dedup();
        FibEntry { next_hops }
    }

    /// Whether the entry can forward anywhere.
    #[must_use]
    pub fn is_reachable(&self) -> bool {
        !self.next_hops.is_empty()
    }
}

/// Outcome of a FIB install attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstallOutcome {
    /// Installed (or updated in place).
    Installed,
    /// The table is at capacity and the entry was **silently dropped** —
    /// the behaviour behind the §2 load-balancer blackhole.
    DroppedFull,
}

/// A longest-prefix-match table with an optional hardware capacity.
///
/// Lookup walks per-length maps from /32 down to /0; inserts of an
/// existing prefix update in place and never count against capacity twice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fib {
    by_len: Vec<HashMap<u32, FibEntry>>,
    len_present: u64,
    count: usize,
    capacity: Option<usize>,
    dropped: u64,
}

impl Default for Fib {
    fn default() -> Self {
        Fib::new(None)
    }
}

impl Fib {
    /// An empty FIB with the given hardware capacity.
    #[must_use]
    pub fn new(capacity: Option<usize>) -> Self {
        Fib {
            by_len: (0..=32).map(|_| HashMap::new()).collect(),
            len_present: 0,
            count: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Number of installed prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total routing-table entries counting each ECMP next hop
    /// (the unit of Table 3's "#Routes" column).
    #[must_use]
    pub fn route_entry_count(&self) -> usize {
        self.by_len
            .iter()
            .flat_map(|m| m.values())
            .map(|e| e.next_hops.len().max(1))
            .sum()
    }

    /// Installs (or replaces) an entry.
    pub fn install(&mut self, prefix: Ipv4Prefix, entry: FibEntry) -> InstallOutcome {
        let map = &mut self.by_len[prefix.len() as usize];
        let key = prefix.network().0;
        if let std::collections::hash_map::Entry::Occupied(mut e) = map.entry(key) {
            e.insert(entry);
            return InstallOutcome::Installed;
        }
        if let Some(cap) = self.capacity {
            if self.count >= cap {
                self.dropped += 1;
                return InstallOutcome::DroppedFull;
            }
        }
        map.insert(key, entry);
        self.len_present |= 1u64 << prefix.len();
        self.count += 1;
        InstallOutcome::Installed
    }

    /// Removes a prefix; returns the old entry if present.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<FibEntry> {
        let map = &mut self.by_len[prefix.len() as usize];
        let removed = map.remove(&prefix.network().0);
        if removed.is_some() {
            self.count -= 1;
            if map.is_empty() {
                self.len_present &= !(1u64 << prefix.len());
            }
        }
        removed
    }

    /// The entry for an exact prefix.
    #[must_use]
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&FibEntry> {
        self.by_len[prefix.len() as usize].get(&prefix.network().0)
    }

    /// Longest-prefix-match lookup.
    #[must_use]
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, &FibEntry)> {
        for len in (0..=32u8).rev() {
            if self.len_present & (1u64 << len) == 0 {
                continue;
            }
            let key = addr.0 & Ipv4Prefix::mask(len);
            if let Some(e) = self.by_len[len as usize].get(&key) {
                return Some((Ipv4Prefix::new(Ipv4Addr(key), len), e));
            }
        }
        None
    }

    /// Iterates all `(prefix, entry)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &FibEntry)> {
        self.by_len.iter().enumerate().flat_map(|(len, map)| {
            map.iter()
                .map(move |(k, e)| (Ipv4Prefix::new(Ipv4Addr(*k), len as u8), e))
        })
    }

    /// Installs dropped due to a full table so far.
    #[must_use]
    pub fn dropped_installs(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        for m in &mut self.by_len {
            m.clear();
        }
        self.len_present = 0;
        self.count = 0;
    }
}

/// Deterministic 5-tuple ECMP hash, selecting one hop from an entry.
///
/// Mirrors hardware behaviour: the same flow always picks the same member,
/// different flows spread across members.
#[must_use]
pub fn ecmp_select(
    entry: &FibEntry,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: u8,
    flow: u16,
) -> Option<NextHop> {
    if entry.next_hops.is_empty() {
        return None;
    }
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for v in [
        src.0 as u64,
        dst.0 as u64,
        u64::from(proto),
        u64::from(flow),
    ] {
        h ^= v;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
    }
    let idx = (h % entry.next_hops.len() as u64) as usize;
    Some(entry.next_hops[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }
    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }
    fn hop(i: u32) -> NextHop {
        NextHop {
            iface: i,
            via: Ipv4Addr(i),
        }
    }

    #[test]
    fn lpm_prefers_longest() {
        let mut fib = Fib::default();
        fib.install(p("0.0.0.0/0"), FibEntry::new(vec![hop(0)]));
        fib.install(p("10.0.0.0/8"), FibEntry::new(vec![hop(1)]));
        fib.install(p("10.1.0.0/16"), FibEntry::new(vec![hop(2)]));
        fib.install(p("10.1.2.0/24"), FibEntry::new(vec![hop(3)]));

        let cases = [
            ("10.1.2.3", 3u32),
            ("10.1.9.9", 2),
            ("10.9.9.9", 1),
            ("99.9.9.9", 0),
        ];
        for (addr, want) in cases {
            let (_, e) = fib.lookup(a(addr)).unwrap();
            assert_eq!(e.next_hops[0].iface, want, "addr {addr}");
        }
    }

    #[test]
    fn lookup_miss_without_default() {
        let mut fib = Fib::default();
        fib.install(p("10.0.0.0/8"), FibEntry::new(vec![hop(1)]));
        assert!(fib.lookup(a("11.0.0.1")).is_none());
    }

    #[test]
    fn reinstall_updates_in_place() {
        let mut fib = Fib::new(Some(1));
        assert_eq!(
            fib.install(p("10.0.0.0/8"), FibEntry::new(vec![hop(1)])),
            InstallOutcome::Installed
        );
        // Same prefix again: updates even at capacity.
        assert_eq!(
            fib.install(p("10.0.0.0/8"), FibEntry::new(vec![hop(2)])),
            InstallOutcome::Installed
        );
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.get(p("10.0.0.0/8")).unwrap().next_hops[0].iface, 2);
    }

    #[test]
    fn capacity_overflow_is_silent_drop() {
        // The §2 incident: /16 split into /24s, downstream FIB too small.
        let mut fib = Fib::new(Some(100));
        let blocks = p("10.1.0.0/16").subnets(24);
        let mut dropped = 0;
        for b in blocks {
            if fib.install(b, FibEntry::new(vec![hop(1)])) == InstallOutcome::DroppedFull {
                dropped += 1;
            }
        }
        assert_eq!(fib.len(), 100);
        assert_eq!(dropped, 156);
        assert_eq!(fib.dropped_installs(), 156);
        // Traffic to a dropped block blackholes (no default route).
        assert!(fib.lookup(a("10.1.200.1")).is_none());
    }

    #[test]
    fn remove_and_clear() {
        let mut fib = Fib::default();
        fib.install(p("10.0.0.0/8"), FibEntry::new(vec![hop(1)]));
        fib.install(p("20.0.0.0/8"), FibEntry::new(vec![hop(2)]));
        assert!(fib.remove(p("10.0.0.0/8")).is_some());
        assert!(fib.remove(p("10.0.0.0/8")).is_none());
        assert_eq!(fib.len(), 1);
        assert!(fib.lookup(a("10.1.1.1")).is_none());
        fib.clear();
        assert!(fib.is_empty());
        assert!(fib.lookup(a("20.1.1.1")).is_none());
    }

    #[test]
    fn entry_normalizes_hops() {
        let e = FibEntry::new(vec![hop(3), hop(1), hop(3), hop(2)]);
        assert_eq!(e.next_hops, vec![hop(1), hop(2), hop(3)]);
        assert!(e.is_reachable());
        assert!(!FibEntry::default().is_reachable());
    }

    #[test]
    fn route_entry_count_counts_multipath() {
        let mut fib = Fib::default();
        fib.install(p("10.0.0.0/8"), FibEntry::new(vec![hop(1), hop(2)]));
        fib.install(p("20.0.0.0/8"), FibEntry::new(vec![hop(1)]));
        assert_eq!(fib.route_entry_count(), 3);
    }

    #[test]
    fn ecmp_is_deterministic_and_spreads() {
        let e = FibEntry::new((0..4).map(hop).collect());
        let pick = |flow: u16| {
            ecmp_select(&e, a("10.0.0.1"), a("10.0.0.2"), 6, flow)
                .unwrap()
                .iface
        };
        // Deterministic per flow.
        assert_eq!(pick(7), pick(7));
        // Spreads across members over many flows.
        let mut seen = std::collections::HashSet::new();
        for flow in 0..64 {
            seen.insert(pick(flow));
        }
        assert_eq!(seen.len(), 4);
        // Empty entry yields nothing.
        assert!(ecmp_select(&FibEntry::default(), a("1.1.1.1"), a("2.2.2.2"), 6, 0).is_none());
    }
}
