//! Validating a pod configuration update behind a safe static boundary —
//! the Table 4 "One Pod" workflow with the Figure 3 validation loop.
//!
//! Operators want to change one pod. Algorithm 1 expands the pod to a
//! safe emulated set (pod + its spine groups + their border roots); the
//! rest of the datacenter is replaced by static speakers synthesized from
//! a production routing snapshot. The update plan is rehearsed step by
//! step, with a deliberately broken first attempt to show the loop
//! catching and reverting it.
//!
//! ```sh
//! cargo run --release --example pod_upgrade
//! ```

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_boundary::{check_prop_5_3, Classification};
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::UniformWorkModel;

fn main() {
    let dc = ClosParams::s_dc().build();
    let pod = &dc.pods[2];
    let must_have: Vec<DeviceId> = pod.tors.iter().chain(&pod.leaves).copied().collect();

    // Production routing snapshot (Prepare records boundary routes from
    // the live network; here, from a fully emulated ground truth).
    let mut production = build_full_bgp_sim(&dc.topo, Box::<UniformWorkModel>::default());
    production.boot_all(SimTime::ZERO);
    production
        .run_until_quiet(
            SimDuration::from_secs(10),
            SimTime::ZERO + SimDuration::from_mins(120),
        )
        .expect("production snapshot converges");

    // Prepare with Algorithm 1 boundary + snapshot-based speakers.
    let prep = prepare(
        &dc.topo,
        &must_have,
        BoundaryMode::SafeDcBoundary,
        SpeakerSource::Snapshot(&production),
        &PlanOptions::default(),
    );
    let class = Classification::new(&dc.topo, &prep.emulated);
    println!(
        "safe boundary: {} emulated of {} devices ({:.1}%), {} speakers, {} VMs",
        prep.emulated.len(),
        dc.internal_device_count(),
        100.0 * prep.emulated.len() as f64 / dc.internal_device_count() as f64,
        class.speakers().len(),
        prep.vm_plan.vm_count()
    );
    println!(
        "Prop 5.3 safety check: {:?}",
        check_prop_5_3(&dc.topo, &class).map(|()| "safe")
    );

    let mut emu = mockup(Arc::new(prep), MockupOptions::builder().build());
    println!("mockup: {}", emu.metrics.mockup);

    // The update: move one ToR's server subnet to a new prefix. First
    // attempt uses a typo'd prefix (wrong /16); the expectation catches
    // it, reverts, and the corrected step passes.
    let tor = pod.tors[0];
    let old_subnet = dc.topo.device(tor).originated[1];
    let intended: crystalnet_net::Ipv4Prefix = "10.200.0.0/24".parse().unwrap();
    let typo: crystalnet_net::Ipv4Prefix = "10.200.0.0/16".parse().unwrap();
    let spine = dc.spine_groups[pod.groups[0] as usize][0];

    let check_spine_has = move |emu: &mut Emulation, pfx: crystalnet_net::Ipv4Prefix| {
        emu.sim
            .fib(spine)
            .and_then(|fib| fib.get(pfx))
            .map(|_| ())
            .ok_or_else(|| format!("spine did not learn {pfx}"))
    };

    let mut plan = ValidationLoop::new();
    // Keep validating after the caught bug so the corrected steps run in
    // the same rehearsal.
    plan.continue_on_failure = true;
    let report = plan
        .step(
            UpdateStep::new(
                "announce the new subnet (operator typo: /16)",
                move |emu| {
                    emu.sim.mgmt_sync(tor, MgmtCommand::AddNetwork(typo));
                },
                move |emu: &mut Emulation| {
                    check_spine_has(emu, intended)
                        .map_err(|_| format!("{typo} announced instead of {intended}"))
                },
            )
            .with_revert(move |emu| {
                emu.sim.mgmt_sync(tor, MgmtCommand::RemoveNetwork(typo));
            }),
        )
        .step(UpdateStep::new(
            "announce the new subnet (corrected)",
            move |emu| {
                emu.sim.mgmt_sync(tor, MgmtCommand::AddNetwork(intended));
            },
            move |emu: &mut Emulation| check_spine_has(emu, intended),
        ))
        .step(UpdateStep::new(
            "retire the old subnet",
            move |emu| {
                emu.sim
                    .mgmt_sync(tor, MgmtCommand::RemoveNetwork(old_subnet));
            },
            move |emu: &mut Emulation| match emu.sim.fib(spine).and_then(|fib| fib.get(old_subnet))
            {
                None => Ok(()),
                Some(_) => Err(format!("{old_subnet} still present upstream")),
            },
        ))
        .run(&mut emu);

    println!("\nvalidation report:");
    for (name, outcome) in &report.steps {
        println!("  [{outcome:?}] {name}");
    }
    println!(
        "\nplan ready for production: {}",
        if report.failures().len() == 1 {
            "after fixing 1 caught bug"
        } else {
            "unexpected result"
        }
    );
}
