//! §7 Case 1: de-risking a migration to new regional backbones.
//!
//! Two datacenters' inter-DC traffic must move from the legacy WAN onto
//! new regional backbone routers without disruption. The rehearsal
//! emulation catches a tool bug (it powers a border router down instead
//! of shutting its WAN sessions); the perfected plan then drains the WAN
//! sessions and the probes confirm traffic shifted onto the backbone.
//!
//! ```sh
//! cargo run --release --example regional_migration
//! ```

use crystalnet::run_case1;

fn main() {
    let report = run_case1(2026);

    println!("=== rehearsal (buggy tooling) ===");
    for (name, outcome) in &report.rehearsal {
        println!("  [{outcome:?}] {name}");
    }
    println!("bugs caught before production: {}", report.bugs_caught);

    println!("\n=== final migration run (fixed tooling) ===");
    for (name, outcome) in &report.final_run {
        println!("  [{outcome:?}] {name}");
    }
    println!(
        "\nmigration {} on {} VMs (the paper's run used 150)",
        if report.no_disruption {
            "completed with no disruption"
        } else {
            "DISRUPTED — do not ship"
        },
        report.vms_used
    );
}
