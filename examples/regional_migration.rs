//! §7 Case 1: de-risking a migration to new regional backbones.
//!
//! Two datacenters' inter-DC traffic must move from the legacy WAN onto
//! new regional backbone routers without disruption. The rehearsal
//! emulation catches a tool bug (it powers a border router down instead
//! of shutting its WAN sessions); the perfected plan then drains the WAN
//! sessions and the probes confirm traffic shifted onto the backbone.
//!
//! ```sh
//! cargo run --release --example regional_migration
//! ```

use crystalnet::prelude::*;
use crystalnet::run_case1_with;

fn main() {
    let options = MockupOptions::builder().seed(2026).build();
    let report = run_case1_with(&options);

    println!("=== rehearsal (buggy tooling) ===");
    for (name, outcome) in &report.rehearsal {
        println!("  [{outcome:?}] {name}");
    }
    println!("bugs caught before production: {}", report.bugs_caught);

    println!("\n=== final migration run (fixed tooling) ===");
    for (name, outcome) in &report.final_run {
        println!("  [{outcome:?}] {name}");
    }
    println!(
        "\nmigration {} on {} VMs (the paper's run used 150)",
        if report.no_disruption {
            "completed with no disruption"
        } else {
            "DISRUPTED — do not ship"
        },
        report.vms_used
    );

    println!("\n=== run report (final migration emulation) ===");
    print!("{}", report.report.summary());
}
