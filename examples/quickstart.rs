//! Quickstart: emulate a small production datacenter, inspect it with the
//! Table 2 APIs, trace a packet, and tear it down.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crystalnet::prelude::*;
use crystalnet::PlanOptions;

fn main() {
    // 1. A production snapshot: the paper's S-DC Clos fabric
    //    (2 borders, 4 spines, 24 leaves, 96 ToRs + WAN peers).
    let dc = ClosParams::s_dc().build();
    println!(
        "production topology: {} devices, {} links",
        dc.topo.device_count(),
        dc.topo.link_count()
    );

    // 2. Prepare: whole-network boundary (WAN peers become speakers),
    //    configs generated, VMs planned.
    let prep = prepare(
        &dc.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    println!(
        "prepare: {} emulated devices, {} speakers, {} VMs (${:.2}/hour)",
        prep.emulated.len(),
        prep.speakers().len(),
        prep.vm_plan.vm_count(),
        prep.vm_plan.hourly_cost_usd()
    );

    // 3. Mockup: bring the emulation to route-ready.
    let mut emu = mockup(Arc::new(prep), MockupOptions::builder().build());
    println!(
        "mockup: network-ready {}, route-ready {}, total {} ({} route ops)",
        emu.metrics.network_ready,
        emu.metrics.route_ready,
        emu.metrics.mockup,
        emu.metrics.route_ops
    );

    // 4. Log in to a ToR over the management plane, as operators do.
    let tor = dc.pods[0].tors[0];
    let tor_name = dc.topo.device(tor).name.clone();
    if let Ok(MgmtResponse::BgpSummary(rows)) =
        emu.login_and_run(&tor_name, MgmtCommand::ShowBgpSummary)
    {
        println!("{tor_name} BGP summary:");
        for (peer, up, received) in rows {
            println!("  neighbor {peer}: established={up}, {received} prefixes");
        }
    }

    // 5. Inject a telemetry probe across the fabric and pull its path.
    let dst_tor = dc.pods[5].tors[15];
    let src = dc.topo.device(tor).originated[1].nth(5);
    let dst = dc.topo.device(dst_tor).originated[1].nth(9);
    let sig = emu.inject_packet(tor, src, dst);
    let (path, outcome) = emu.pull_packets(sig).expect("probe traced");
    println!("probe {src} -> {dst}: {outcome:?}");
    for (hop, dev) in path.iter().enumerate() {
        println!("  hop {hop}: {}", emu.topo.device(*dev).name);
    }

    // 6. Explain a route: why does this ToR forward the probed prefix
    //    the way it does? The answer is the FIB entry's provenance —
    //    origin announcement, propagation chain, best-path reason.
    let dst_prefix = dc.topo.device(dst_tor).originated[1];
    match emu.explain_route(&tor_name, dst_prefix) {
        Ok(explanation) => print!("{}", explanation.render()),
        Err(e) => println!("explain failed: {e}"),
    }

    // 7. Rehearse without commitment: fork the warm baseline, drain a
    //    leaf uplink on the child, inspect the blast radius — then drop
    //    the fork. Drop is the rollback; the baseline never changed.
    let uplink = dc
        .topo
        .links()
        .find(|(_, l)| l.a.device == dc.pods[0].leaves[0] || l.b.device == dc.pods[0].leaves[0])
        .map(|(lid, _)| lid)
        .expect("leaf has links");
    let mut fork = emu.fork();
    println!("fork: {}", fork.base().summary());
    let delta = fork
        .apply(&ChangeSet::new().link_down(uplink))
        .expect("drain rehearses on the fork");
    println!(
        "rehearsed drain: {} dirty device(s), {} FIB change(s) on {} device(s)",
        delta.dirty.len(),
        delta.total_fib_changes(),
        fork.diff_against_parent().len()
    );
    drop(fork);
    println!(
        "fork dropped — baseline untouched ({} FIB entries)",
        emu.snapshot().fib_entries
    );

    // 8. Pull the run report: spans, counters, and the recovery journal,
    //    all in deterministic virtual time. The JSON artifact is what CI
    //    validates; the summary is the operator-facing table.
    let report = emu.pull_report();
    print!("{}", report.summary());
    let json_path = "target/quickstart_report.json";
    std::fs::write(json_path, report.to_json()).expect("write run report");
    println!("run report written to {json_path}");

    // 9. Export the causal trace — control-plane records merged with the
    //    probe's packet hops — as a Chrome trace-event document; open it
    //    in Perfetto or chrome://tracing.
    let trace_path = "target/quickstart_trace.json";
    std::fs::write(trace_path, emu.trace_chrome_json()).expect("write trace");
    println!(
        "causal trace ({} records) written to {trace_path}",
        emu.pull_trace().len()
    );

    // 10. Clear and destroy, reporting the dollars burned.
    let clear = emu.clear();
    println!("clear latency: {clear}");
    let cost = emu.destroy();
    println!("emulation cost: ${cost:.2}");
}
