//! Figure 1: vendor-specific IP aggregation behaviour causes severe
//! traffic imbalance — and only a bug-compatible emulation can see it.
//!
//! R1 (AS 1) owns P1 and P2. R6 ("Vendor-A") and R7 ("Vendor-C") both
//! aggregate them into P3, but Vendor-A selects a contributing path and
//! prepends itself while Vendor-C announces the aggregate with only its
//! own AS — so R8 always prefers R7, and every P3-bound packet squeezes
//! through one router.
//!
//! ```sh
//! cargo run --release --example vendor_aggregation_bug
//! ```

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_config::AggregateConfig;
use crystalnet_net::fixtures::fig1;

fn main() {
    let f = fig1();
    let mut prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    // Operators configure `aggregate-address P3 summary-only` on both
    // aggregation routers — identical configuration, divergent firmware.
    for (dev, cfg) in &mut prep.configs {
        if *dev == f.routers[5] || *dev == f.routers[6] {
            cfg.bgp.as_mut().unwrap().aggregates.push(AggregateConfig {
                prefix: f.p3,
                summary_only: true,
            });
        }
    }
    let mut emu = mockup(Arc::new(prep), MockupOptions::builder().build());

    // R8's view of P3, as an operator would pull it.
    if let Ok(MgmtResponse::Routes(rows)) = emu.login_and_run("r8", MgmtCommand::ShowRoutes) {
        for (prefix, path_len, ecmp) in rows {
            if prefix == f.p3 {
                println!("R8: {prefix} AS-path length {path_len}, ECMP width {ecmp}");
            }
        }
    }

    // Telemetry: 200 flows from R8 into P3.
    let (mut via_r6, mut via_r7) = (0u32, 0u32);
    for flow in 0..200u32 {
        let src = crystalnet_net::Ipv4Addr::new(203, 0, (flow >> 8) as u8, flow as u8);
        let sig = emu.inject_packet(f.routers[7], src, f.p3.nth(flow * 7 + 1));
        let (path, _) = emu.pull_packets(sig).expect("probe traced");
        if path.contains(&f.routers[5]) {
            via_r6 += 1;
        }
        if path.contains(&f.routers[6]) {
            via_r7 += 1;
        }
    }
    println!("traffic split for P3: R6 carried {via_r6}, R7 carried {via_r7}");
    println!(
        "imbalance {}: Vendor-C's empty-path aggregate wins every tie",
        if via_r6 == 0 {
            "confirmed"
        } else {
            "NOT reproduced"
        }
    );
}
