//! §7 Case 2: a switch-OS development pipeline built on the emulator.
//!
//! A development build of the open-source switch OS (CTNR-B) replaces a
//! production ToR inside an emulated environment. The pipeline verifies
//! "no change in network behavior" — and catches the three firmware bugs
//! the paper reports (missed default-route FIB update, broken ARP trap,
//! crash after BGP session flaps), none of which unit tests found.
//!
//! ```sh
//! cargo run --release --example firmware_pipeline
//! ```

use crystalnet::prelude::*;
use crystalnet::run_case2_with;

fn main() {
    let options = MockupOptions::builder().seed(2026).build();
    let report = run_case2_with(&options);

    println!("=== dev build under test ===");
    if report.bugs.is_empty() {
        println!("  pipeline clean (unexpected for the dev build!)");
    }
    for (i, bug) in report.bugs.iter().enumerate() {
        println!("  BUG {}: {bug}", i + 1);
    }

    println!("\n=== released build (control) ===");
    println!(
        "  {}",
        if report.control_clean {
            "pipeline clean — behaviour matches production"
        } else {
            "control failed: the pipeline itself is broken"
        }
    );
    println!(
        "\n{} bugs caught that escaped unit and testbed tests",
        report.bugs.len()
    );

    println!("\n=== run report (dev-build emulation) ===");
    print!("{}", report.report.summary());
}
