//! Architecture-level invariants from the paper's Figures 2, 4, 5 and 6:
//! the two-layer PhyNet design, per-link VXLAN isolation, and the
//! loop-free tree-shaped management overlay.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_vnet::{ContainerKind, ContainerState, LinkSpan};
use std::collections::HashSet;
use std::sync::Arc;

fn emu() -> (crystalnet_net::ClosTopology, crystalnet::Emulation) {
    let dc = ClosParams::s_dc().build();
    let prep = prepare(
        &dc.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    (dc, mockup(Arc::new(prep), MockupOptions::builder().build()))
}

#[test]
fn every_device_sandbox_shares_a_phynet_namespace() {
    // Figure 4: heterogeneous device sandboxes run on top of homogeneous
    // PhyNet containers that hold the interfaces.
    let (_, emu) = emu();
    for sb in emu.sandboxes.values() {
        let engine = &emu.engines[sb.vm];
        let phynet = engine.get(sb.phynet).unwrap();
        let device = engine.get(sb.device).unwrap();
        assert_eq!(phynet.kind, ContainerKind::PhyNet);
        assert_eq!(device.phynet, Some(sb.phynet));
        assert_eq!(phynet.state, ContainerState::Running);
        assert_eq!(device.state, ContainerState::Running);
    }
}

#[test]
fn interfaces_live_in_phynet_not_in_device_sandboxes() {
    let (dc, emu) = emu();
    for (&dev, sb) in &emu.sandboxes {
        let engine = &emu.engines[sb.vm];
        let phynet = engine.get(sb.phynet).unwrap();
        let device = engine.get(sb.device).unwrap();
        assert_eq!(
            phynet.iface_count as usize,
            dc.topo.device(dev).ifaces.len(),
            "PhyNet holds exactly the production interface count"
        );
        assert_eq!(device.iface_count, 0, "device sandboxes hold no interfaces");
    }
}

#[test]
fn inter_vm_links_get_unique_vnis_per_vm() {
    // Figure 5: each virtual link is isolated by a VXLAN ID, unique per
    // VM.
    let (_, emu) = emu();
    let mut per_vm: std::collections::HashMap<_, HashSet<u32>> = Default::default();
    let mut inter_vm = 0;
    for vl in &emu.vlinks {
        match vl.span {
            LinkSpan::IntraVm => assert_eq!(vl.vni, None),
            _ => {
                inter_vm += 1;
                let vni = vl.vni.expect("inter-VM links are tunneled");
                assert!(
                    per_vm.entry(vl.vm_a).or_default().insert(vni),
                    "VNI {vni} reused on VM {:?}",
                    vl.vm_a
                );
                assert!(
                    per_vm.entry(vl.vm_b).or_default().insert(vni),
                    "VNI {vni} reused on VM {:?}",
                    vl.vm_b
                );
            }
        }
    }
    assert!(inter_vm > 0, "a multi-VM emulation must tunnel something");
}

#[test]
fn management_overlay_is_a_tree_with_two_hop_reach() {
    // Figure 6: per-VM bridges hang off the jumpbox; devices hang off
    // their VM bridge. No mesh, no L2 storm, every device 2 hops away.
    let (dc, emu) = emu();
    assert!(emu.mgmt.is_tree());
    for (_, dev) in dc.topo.devices() {
        if emu.mgmt.resolve(&dev.name).is_some() {
            assert_eq!(emu.mgmt.hops_to(&dev.name), Some(2), "{}", dev.name);
        }
    }
}

#[test]
fn vendor_grouping_is_enforced_on_the_running_fleet() {
    // §6.2: one vendor's sandboxes never share a VM with another's.
    let (dc, emu) = emu();
    for planned in &emu.prep.vm_plan.vms {
        let vendors: HashSet<_> = planned
            .devices
            .iter()
            .map(|&d| dc.topo.device(d).vendor)
            .collect();
        assert!(vendors.len() <= 1);
    }
}

#[test]
fn emulation_cost_tracks_fleet_and_time() {
    let (_, emu) = emu();
    let rate = emu.cloud.lock().unwrap().hourly_rate_usd();
    let plan_rate = emu.prep.vm_plan.hourly_cost_usd();
    assert!((rate - plan_rate).abs() < 1e-9);
    let cost = emu.cloud.lock().unwrap().cost_usd(emu.now());
    assert!(cost > 0.0);
    assert!(cost < rate, "an emulation converges in under an hour");
}
