//! Cross-crate end-to-end validation: the full CrystalNet story on one
//! datacenter — production ground truth → safe boundary → speaker
//! synthesis → boundary emulation → operator change → identical outcome.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_boundary::{differential_validate, emulated_set};
use crystalnet_dataplane::CompareOptions;
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::UniformWorkModel;

/// The headline guarantee, measured: a pod-scoped emulation behind an
/// Algorithm 1 boundary reaches exactly the same forwarding state as a
/// full-network emulation under the same operator change.
#[test]
fn pod_boundary_emulation_matches_full_network_emulation() {
    let dc = ClosParams::s_dc().build();
    let pod = &dc.pods[1];
    let must_have: Vec<DeviceId> = pod.tors.iter().chain(&pod.leaves).copied().collect();
    let emulated = crystalnet_boundary::find_safe_dc_boundary(&dc.topo, &must_have);
    assert!(emulated.len() < dc.internal_device_count() / 3);

    let tor = pod.tors[3];
    let new_prefix: crystalnet_net::Ipv4Prefix = "10.210.0.0/24".parse().unwrap();
    let report = differential_validate(
        &dc.topo,
        &emulated,
        &must_have,
        &CompareOptions::strict(),
        &move |sim, at| {
            sim.mgmt(tor, MgmtCommand::AddNetwork(new_prefix), at);
        },
    );
    assert!(
        report.consistent(),
        "safe boundary diverged: {} differences",
        report.difference_count()
    );
}

/// An *unsafe* hand-picked boundary (the pod without its spines) visibly
/// diverges under the same differential check — the emulator cannot be
/// silently wrong.
#[test]
fn truncated_boundary_is_caught_by_differential_validation() {
    let dc = ClosParams::s_dc().build();
    let pod0 = &dc.pods[0];
    let pod1 = &dc.pods[1];
    // Emulate two pods but no spines: cross-pod updates must transit the
    // (static) spine speakers, so a new prefix on pod1 never reaches
    // pod0 in the boundary emulation.
    let devs: Vec<DeviceId> = pod0
        .tors
        .iter()
        .chain(&pod0.leaves)
        .chain(&pod1.tors)
        .chain(&pod1.leaves)
        .copied()
        .collect();
    let emulated = emulated_set(&devs);
    let tor = pod1.tors[0];
    let new_prefix: crystalnet_net::Ipv4Prefix = "10.211.0.0/24".parse().unwrap();
    let report = differential_validate(
        &dc.topo,
        &emulated,
        &[pod0.leaves[0], pod0.tors[0]],
        &CompareOptions::strict(),
        &move |sim, at| {
            sim.mgmt(tor, MgmtCommand::AddNetwork(new_prefix), at);
        },
    );
    assert!(
        !report.consistent(),
        "an unsafe boundary must be observable"
    );
}

/// A snapshot-speaker emulation of a pod agrees with production on every
/// route the pod's devices hold (pre-change fidelity).
#[test]
fn pod_emulation_fib_matches_production_snapshot() {
    let dc = ClosParams::s_dc().build();
    let pod = &dc.pods[4];
    let must_have: Vec<DeviceId> = pod.tors.iter().chain(&pod.leaves).copied().collect();

    // Production ground truth.
    let mut production = build_full_bgp_sim(&dc.topo, Box::<UniformWorkModel>::default());
    production.boot_all(SimTime::ZERO);
    production
        .run_until_quiet(
            SimDuration::from_secs(10),
            SimTime::ZERO + SimDuration::from_mins(120),
        )
        .unwrap();

    // Boundary emulation through the orchestrator.
    let prep = prepare(
        &dc.topo,
        &must_have,
        BoundaryMode::SafeDcBoundary,
        SpeakerSource::Snapshot(&production),
        &PlanOptions::default(),
    );
    let emu = mockup(Arc::new(prep), MockupOptions::builder().build());

    for &d in &must_have {
        let emu_fib = emu.sim.fib(d).expect("emulated");
        let prod_fib = production.fib(d).expect("production");
        let diffs =
            crystalnet_dataplane::compare_fibs(emu_fib, prod_fib, &CompareOptions::strict());
        assert!(
            diffs.is_empty(),
            "{}: {} differences vs production (first: {:?})",
            dc.topo.device(d).name,
            diffs.len(),
            diffs.first()
        );
    }
}

/// The facade crate re-exports every subsystem.
#[test]
fn facade_reexports_compile_and_align() {
    let p: crystalnet_repro::net::Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    assert_eq!(p.len(), 8);
    let profile = crystalnet_repro::routing::VendorProfile::ctnr_a();
    assert_eq!(profile.vendor, crystalnet_repro::net::Vendor::CtnrA);
    let _ = crystalnet_repro::sim::SimDuration::from_secs(1);
    let fib = crystalnet_repro::dataplane::Fib::default();
    assert!(fib.is_empty());
}
